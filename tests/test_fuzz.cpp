// Randomized stress: drive every counter (and the tree services) with
// pseudo-random workloads, delivery regimes and interleavings, checking
// semantic invariants at every quiescent point. No expectations about
// specific numbers — only that nothing is ever wrong.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/tree_bit.hpp"
#include "core/tree_counter.hpp"
#include "core/tree_pq.hpp"
#include "core/tree_service.hpp"
#include "faults/retry.hpp"
#include "harness/factory.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

DelayModel random_delay(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0:
      return DelayModel::fixed_delay(rng.next_in(1, 4));
    case 1:
      return DelayModel::uniform(1, rng.next_in(2, 40));
    case 2:
      return DelayModel::heavy_tail(1, rng.next_in(10, 500));
    default:
      return DelayModel::with_slow_processor(
          DelayModel::uniform(1, 8), static_cast<ProcessorId>(rng.next_below(8)),
          rng.next_in(2, 20));
  }
}

class FuzzCounters : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCounters, SequentialInvariantsUnderRandomEverything) {
  Rng meta(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int round = 0; round < 8; ++round) {
    const auto kinds = all_counter_kinds();
    const CounterKind kind = kinds[meta.next_below(kinds.size())];
    const std::int64_t n = meta.next_in(8, 100);
    SimConfig cfg;
    cfg.seed = meta.next();
    cfg.delay = random_delay(meta);
    cfg.fifo_channels = meta.next_below(2) == 0;
    Simulator sim(make_counter(kind, n), cfg);
    const auto actual_n = static_cast<std::int64_t>(sim.num_processors());
    const std::int64_t ops = meta.next_in(1, 2 * actual_n);
    Rng order_rng(meta.next());
    const auto order = schedule_uniform(actual_n, ops, order_rng);
    const RunResult result = run_sequential(sim, order);
    ASSERT_TRUE(result.values_ok)
        << to_string(kind) << " n=" << actual_n << " ops=" << ops;
  }
}

TEST_P(FuzzCounters, ConcurrentPermutationInvariant) {
  Rng meta(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  for (int round = 0; round < 6; ++round) {
    const auto kinds = all_counter_kinds();
    const CounterKind kind = kinds[meta.next_below(kinds.size())];
    if (!supports_concurrency(kind)) continue;
    const std::int64_t n = meta.next_in(8, 64);
    SimConfig cfg;
    cfg.seed = meta.next();
    cfg.delay = random_delay(meta);
    Simulator sim(make_counter(kind, n), cfg);
    const auto actual_n = static_cast<std::int64_t>(sim.num_processors());
    Rng order_rng(meta.next());
    const auto order =
        schedule_uniform(actual_n, meta.next_in(4, 80), order_rng);
    const auto batch = static_cast<std::size_t>(meta.next_in(2, 16));
    const RunResult result = run_concurrent(sim, make_batches(order, batch));
    ASSERT_TRUE(result.values_ok) << to_string(kind);
  }
}

TEST_P(FuzzCounters, TreePriorityQueueRandomOps) {
  Rng meta(static_cast<std::uint64_t>(GetParam()) * 31337 + 99);
  TreeServiceParams params;
  params.k = 2 + static_cast<int>(meta.next_below(2));  // k in {2, 3}
  SimConfig cfg;
  cfg.seed = meta.next();
  cfg.delay = random_delay(meta);
  Simulator sim(std::make_unique<TreePriorityQueue>(params), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  std::vector<std::int64_t> model;  // reference multiset
  const std::int64_t ops = meta.next_in(20, 120);
  for (std::int64_t i = 0; i < ops; ++i) {
    const auto origin = static_cast<ProcessorId>(meta.next_below(
        static_cast<std::uint64_t>(n)));
    if (meta.next_below(2) == 0) {
      const auto key = meta.next_in(-50, 50);
      const OpId op =
          sim.begin_op(origin, {TreePriorityQueue::kOpInsert, key});
      sim.run_until_quiescent();
      ASSERT_EQ(*sim.result(op), key);
      model.push_back(key);
    } else {
      const OpId op = sim.begin_op(origin, {TreePriorityQueue::kOpExtractMin});
      sim.run_until_quiescent();
      if (model.empty()) {
        ASSERT_EQ(*sim.result(op), TreePriorityQueue::kEmptyQueue);
      } else {
        const auto it = std::min_element(model.begin(), model.end());
        ASSERT_EQ(*sim.result(op), *it);
        model.erase(it);
      }
    }
  }
  const auto& pq = dynamic_cast<const TreePriorityQueue&>(sim.counter());
  EXPECT_EQ(pq.size(), model.size());
  pq.deep_check();
}

TEST_P(FuzzCounters, TreeBitRandomInterleavedWithClones) {
  // Clone mid-run and continue both — state snapshots must be complete.
  Rng meta(static_cast<std::uint64_t>(GetParam()) * 271 + 3);
  TreeServiceParams params;
  params.k = 2;
  SimConfig cfg;
  cfg.seed = meta.next();
  cfg.delay = random_delay(meta);
  Simulator sim(std::make_unique<TreeFlipBit>(params), cfg);
  const std::int64_t warm = meta.next_in(1, 30);
  for (std::int64_t i = 0; i < warm; ++i) {
    sim.begin_inc(static_cast<ProcessorId>(meta.next_below(8)));
    sim.run_until_quiescent();
  }
  Simulator clone(sim);
  for (Simulator* s : {&sim, &clone}) {
    for (int i = 0; i < 10; ++i) {
      const OpId op = s->begin_inc(static_cast<ProcessorId>(i % 8));
      s->run_until_quiescent();
      ASSERT_EQ(*s->result(op), static_cast<Value>((warm + i) % 2));
    }
  }
}

TEST_P(FuzzCounters, LossyChannelsWithReliableTransport) {
  // Random FaultSchedules over the retry transport: any mix of drops,
  // duplicates and a crash-recover window must still hand out distinct
  // consecutive values (run_sequential aborts otherwise). The inner
  // protocol is the plain tree counter — all fault masking lives in the
  // transport.
  Rng meta(static_cast<std::uint64_t>(GetParam()) * 48611 + 7);
  for (int round = 0; round < 6; ++round) {
    SimConfig cfg;
    cfg.seed = meta.next();
    cfg.delay = random_delay(meta);
    cfg.faults.drop_probability =
        static_cast<double>(meta.next_below(30)) / 100.0;  // 0 .. 0.29
    cfg.faults.duplicate_probability =
        static_cast<double>(meta.next_below(30)) / 100.0;
    if (meta.next_below(2) == 0) {
      // A transient crash-recover window on a non-root processor: the
      // transport rides it out with retransmissions (crash-stops need
      // the self-healing service, covered in test_fault_tolerance).
      const SimTime at = meta.next_in(10, 200);
      cfg.faults.crashes.push_back(
          {static_cast<ProcessorId>(meta.next_in(1, 7)), at,
           at + meta.next_in(20, 120)});
    }
    TreeServiceParams params;
    params.k = 2;
    RetryParams retry;
    retry.ack_timeout = meta.next_in(4, 16);
    retry.max_timeout = retry.ack_timeout * 8;
    retry.max_attempts = 30;
    Simulator sim(std::make_unique<ReliableTransport>(
                      std::make_unique<TreeCounter>(params), retry),
                  cfg);
    const auto n = static_cast<std::int64_t>(sim.num_processors());
    Rng order_rng(meta.next());
    const auto order = schedule_uniform(n, meta.next_in(4, 3 * n), order_rng);
    const RunResult result = run_sequential(sim, order);
    ASSERT_TRUE(result.values_ok)
        << "drop=" << cfg.faults.drop_probability
        << " dup=" << cfg.faults.duplicate_probability
        << " crashes=" << cfg.faults.crashes.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCounters, ::testing::Range(1, 6));

}  // namespace
}  // namespace dcnt
