#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dcnt {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, CopyPreservesStream) {
  Rng a(7);
  a.next();
  Rng b = a;  // value semantics: clone continues identically
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, NextBelowInRange) {
  Rng rng(99);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  // Degenerate interval.
  EXPECT_EQ(rng.next_in(42, 42), 42);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(2024);
  std::vector<int> buckets(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++buckets[rng.next_below(10)];
  }
  for (const int b : buckets) {
    EXPECT_GT(b, draws / 10 - draws / 50);
    EXPECT_LT(b, draws / 10 + draws / 50);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(11);
  Rng child = a.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == child.next()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, ShuffleCompatible) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  std::shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace dcnt
