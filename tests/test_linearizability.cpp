// Linearizability of concurrent counting, after [HSW96] (cited by the
// paper): structures that serialize at a root (central, combining,
// the paper's tree) are linearizable; counting networks are famously
// only quiescently consistent — a stalled token lets a later-starting
// token fetch a smaller value.
#include "analysis/linearizability.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/central.hpp"
#include "baselines/combining_tree.hpp"
#include "baselines/counting_network.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

CounterOpRecord rec(OpId op, SimTime inv, SimTime resp, Value value) {
  return CounterOpRecord{op, inv, resp, value};
}

TEST(Checker, EmptyAndSingletonAreLinearizable) {
  EXPECT_TRUE(check_linearizable({}).linearizable);
  EXPECT_TRUE(check_linearizable({rec(0, 0, 5, 0)}).linearizable);
}

TEST(Checker, SequentialHistoryLinearizable) {
  EXPECT_TRUE(check_linearizable({
                                     rec(0, 0, 1, 0),
                                     rec(1, 2, 3, 1),
                                     rec(2, 4, 5, 2),
                                 })
                  .linearizable);
}

TEST(Checker, ConcurrentOverlapMayReorderFreely) {
  // Both ops overlap; values may go either way.
  EXPECT_TRUE(check_linearizable({
                                     rec(0, 0, 10, 1),
                                     rec(1, 5, 8, 0),
                                 })
                  .linearizable);
}

TEST(Checker, DetectsRealTimeInversion) {
  // Op 0 finished with value 1 before op 1 started, yet op 1 got 0.
  const auto report = check_linearizable({
      rec(0, 0, 2, 1),
      rec(1, 5, 7, 0),
  });
  EXPECT_FALSE(report.linearizable);
  EXPECT_EQ(report.violations, 1);
  EXPECT_EQ(report.first_a, 0);
  EXPECT_EQ(report.first_b, 1);
}

TEST(Checker, EqualTimesAreNotAnInversion) {
  // resp(A) == inv(B): overlap boundary — allowed to reorder.
  EXPECT_TRUE(check_linearizable({
                                     rec(0, 0, 5, 1),
                                     rec(1, 5, 9, 0),
                                 })
                  .linearizable);
}

TEST(Checker, CountsAllViolations) {
  const auto report = check_linearizable({
      rec(0, 0, 1, 5),
      rec(1, 2, 3, 1),
      rec(2, 4, 6, 2),
      rec(3, 7, 8, 0),
  });
  EXPECT_FALSE(report.linearizable);
  EXPECT_EQ(report.violations, 3);  // ops 1, 2 and 3 all undercut op 0
}

// Staggered driver: operations are invoked while earlier ones are
// still in flight (a few deliveries apart), so real-time precedence
// pairs straddle live traffic — the regime where linearizability and
// quiescent consistency differ. Batch drivers cannot produce this: a
// quiescent point between batches restores the step property.
std::vector<CounterOpRecord> run_staggered_history(
    std::unique_ptr<CounterProtocol> counter, std::uint64_t seed,
    std::int64_t ops) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.delay = DelayModel::heavy_tail(1, 400);
  Simulator sim(std::move(counter), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  Rng rng(seed * 31 + 7);
  for (std::int64_t i = 0; i < ops; ++i) {
    sim.begin_inc(static_cast<ProcessorId>(i % n));
    // ~6 deliveries between invocations keeps a handful of ops in
    // flight while earlier ones finish — without this, nothing ever
    // responds before the next invocation and there are no real-time
    // precedence pairs to violate.
    const auto steps = rng.next_below(12);
    for (std::uint64_t s = 0; s < steps; ++s) {
      if (!sim.step()) break;
    }
  }
  sim.run_until_quiescent();
  return counter_history(sim);
}

TEST(Linearizability, TreeCounterIsLinearizableUnderConcurrency) {
  // The root incumbent serializes: if A responded before B was invoked,
  // A's root visit happened first, so val(A) < val(B).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    TreeCounterParams params;
    params.k = 3;
    auto history =
        run_staggered_history(std::make_unique<TreeCounter>(params), seed, 200);
    EXPECT_TRUE(check_linearizable(std::move(history)).linearizable)
        << "seed " << seed;
  }
}

TEST(Linearizability, CentralCounterIsLinearizable) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto history =
        run_staggered_history(std::make_unique<CentralCounter>(64), seed, 200);
    EXPECT_TRUE(check_linearizable(std::move(history)).linearizable)
        << "seed " << seed;
  }
}

TEST(Linearizability, CombiningTreeIsLinearizable) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    CombiningTreeParams params;
    params.n = 64;
    auto history = run_staggered_history(
        std::make_unique<CombiningTreeCounter>(params), seed, 200);
    EXPECT_TRUE(check_linearizable(std::move(history)).linearizable)
        << "seed " << seed;
  }
}

TEST(Linearizability, CountingNetworkIsNotLinearizable) {
  // [HSW96]'s separation, reproduced: across a handful of seeds with
  // heavy-tailed delays, some token stalls between its last balancer
  // and its output cell while a later token completes, and a third,
  // still later token then receives a smaller value.
  std::int64_t violations = 0;
  for (std::uint64_t seed = 1; seed <= 30 && violations == 0; ++seed) {
    CountingNetworkParams params;
    params.n = 32;
    params.width = 4;
    auto history = run_staggered_history(
        std::make_unique<CountingNetworkCounter>(params), seed, 200);
    violations += check_linearizable(std::move(history)).violations;
  }
  EXPECT_GT(violations, 0)
      << "no real-time inversion found — counting network behaved "
         "linearizably across all seeds, which contradicts [HSW96]";
}

TEST(Linearizability, SequentialRunsAreTriviallyLinearizable) {
  TreeCounterParams params;
  params.k = 2;
  SimConfig cfg;
  cfg.enable_trace = false;
  cfg.delay = DelayModel::uniform(1, 30);
  cfg.seed = 77;
  Simulator sim(std::make_unique<TreeCounter>(params), cfg);
  run_sequential(sim, schedule_sequential(8));
  EXPECT_TRUE(check_linearizable(counter_history(sim)).linearizable);
}

}  // namespace
}  // namespace dcnt
