// Multi-process cluster tests: real dcnt_node processes on localhost.
//
// These are the acceptance tests of the socket runtime: the cluster
// must return a permutation of 0..ops-1 for shard-safe protocols over
// both data planes, sequential TCP runs must be deterministic in
// (seed, schedule), and the lossy UDP plane must demonstrably lose
// datagrams yet recover through the reliable transport.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "harness/cluster.hpp"
#include "harness/factory.hpp"
#include "harness/throughput.hpp"

namespace dcnt::net {
namespace {

ClusterOptions base_options() {
  ClusterOptions opt;
  opt.nodes = 4;
  opt.min_processors = 8;
  opt.ops = 64;
  opt.seed = 7;
  opt.concurrency = 8;
  opt.timeout_seconds = 90.0;
  return opt;
}

TEST(Cluster, TreeFourNodesTcp) {
  ClusterOptions opt = base_options();
  opt.counter = "tree";
  const ClusterResult r = run_cluster(opt);
  EXPECT_TRUE(r.values_ok);
  EXPECT_EQ(r.ops, 64u);
  EXPECT_EQ(r.nodes, 4u);
  // Real messages crossed real sockets.
  EXPECT_GT(r.wire_msgs_sent, 0);
  EXPECT_EQ(r.wire_msgs_sent, r.wire_msgs_received);
  EXPECT_GT(r.total_messages, 0);
  EXPECT_GT(r.max_load, 0);
  EXPECT_GE(r.bottleneck, 0);
}

TEST(Cluster, CentralFourNodesTcp) {
  ClusterOptions opt = base_options();
  opt.counter = "central";
  opt.min_processors = 16;
  const ClusterResult r = run_cluster(opt);
  EXPECT_TRUE(r.values_ok);
  EXPECT_EQ(r.n, 16u);
  // The central counter's whole point: the holder is the bottleneck.
  EXPECT_EQ(r.bottleneck, 0);
  EXPECT_EQ(r.wire_msgs_sent, r.wire_msgs_received);
}

TEST(Cluster, CombiningFourNodesTcp) {
  ClusterOptions opt = base_options();
  opt.counter = "combining";
  opt.min_processors = 16;
  opt.ops = 48;
  const ClusterResult r = run_cluster(opt);
  EXPECT_TRUE(r.values_ok);
}

TEST(Cluster, SequentialTcpIsDeterministic) {
  // Sequential mode: the quiescence barrier settles each op completely
  // before the next one starts, so for protocols whose per-op traffic
  // is a single causal chain (central: origin->holder->origin;
  // static-tree: origin->...->root->origin) only one message is ever in
  // flight and socket timing cannot reorder anything. Two runs at one
  // (seed, schedule) must agree byte for byte: values, per-processor
  // loads, and total messages.
  for (const char* counter : {"central", "static-tree"}) {
    SCOPED_TRACE(counter);
    ClusterOptions opt = base_options();
    opt.counter = counter;
    opt.ops = 24;
    opt.quiesce_between_ops = true;
    const ClusterResult a = run_cluster(opt);
    const ClusterResult b = run_cluster(opt);
    EXPECT_EQ(a.values, b.values);
    EXPECT_EQ(a.load, b.load);
    EXPECT_EQ(a.total_messages, b.total_messages);
    // Sequential completions arrive in issue order, so values are not
    // merely a permutation: op i returns i.
    for (std::size_t i = 0; i < a.values.size(); ++i) {
      EXPECT_EQ(a.values[i], static_cast<Value>(i));
    }
  }
}

TEST(Cluster, SequentialTreeValuesDeterministicCountsBounded) {
  // The dynamic tree is different: a retirement forks the handover
  // handshake off the inc's reply path, so two messages race across
  // distinct socket pairs and a message can reach a role mid-handover
  // — costing the constant number of forwarding messages the paper
  // budgets for a handover. Message COUNTS are therefore not a
  // deterministic function of (seed, schedule) under real asynchrony
  // (the simulator agrees: under DelayModel::uniform(1,10) this very
  // schedule yields totals 72..77), but VALUES are — linearized counts
  // must come back 0,1,2,... in issue order every run.
  ClusterOptions opt = base_options();
  opt.counter = "tree";
  opt.ops = 24;
  opt.quiesce_between_ops = true;
  const ClusterResult a = run_cluster(opt);
  const ClusterResult b = run_cluster(opt);
  EXPECT_EQ(a.values, b.values);
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i], static_cast<Value>(i));
  }
  // Counts may differ run to run only by the O(1)-per-handover
  // forwarding slack; anything larger means lost or duplicated traffic.
  const std::int64_t diff = a.total_messages > b.total_messages
                                ? a.total_messages - b.total_messages
                                : b.total_messages - a.total_messages;
  EXPECT_LE(diff, 8);
}

TEST(Cluster, SingleNodeRunsAnyCounter) {
  // nodes=1 needs no shard contract — the whole protocol lives in one
  // process; the harness still exercises spawn/handshake/quiesce.
  ClusterOptions opt = base_options();
  opt.nodes = 1;
  opt.counter = "diffracting";
  opt.min_processors = 8;
  opt.ops = 32;
  const ClusterResult r = run_cluster(opt);
  EXPECT_TRUE(r.values_ok);
  EXPECT_EQ(r.wire_msgs_sent, 0);  // no peers to talk to
}

TEST(Cluster, BackendParityPollVsEpoll) {
  // The reactor backend is an implementation detail: the same 4-node
  // tree workload under poll and under epoll must produce the same
  // sorted value multiset (each a permutation of 0..ops-1) and the same
  // protocol-level message totals. m_p is a protocol quantity — the
  // readiness mechanism must not be observable in it. (Per-run message
  // counts for the dynamic tree carry the O(1)-per-handover slack
  // documented above, so totals are compared with that tolerance.)
  ClusterOptions opt = base_options();
  opt.counter = "tree";
  opt.ops = 48;
  opt.backend = "poll";
  const ClusterResult poll_r = run_cluster(opt);
  opt.backend = "epoll";
  const ClusterResult epoll_r = run_cluster(opt);
  EXPECT_TRUE(poll_r.values_ok);
  EXPECT_TRUE(epoll_r.values_ok);
  std::vector<Value> pv = poll_r.values;
  std::vector<Value> ev = epoll_r.values;
  std::sort(pv.begin(), pv.end());
  std::sort(ev.begin(), ev.end());
  EXPECT_EQ(pv, ev);  // both exactly 0..warmup+ops-1
  const std::int64_t diff = poll_r.total_messages > epoll_r.total_messages
                                ? poll_r.total_messages - epoll_r.total_messages
                                : epoll_r.total_messages - poll_r.total_messages;
  // O(1) forwarding slack per handover; 48 ops retire more roles than
  // the 24-op sequential test above, so the band scales with it (and
  // sanitizer timing shifts which handovers race, so it is generous —
  // genuine lost or duplicated traffic diverges by far more or wedges
  // the quiescence barrier outright).
  EXPECT_LE(diff, 32);

  // central's per-op traffic is a single causal chain: its m_p totals
  // must match exactly across backends, per processor.
  opt.counter = "central";
  opt.min_processors = 16;
  opt.quiesce_between_ops = true;
  opt.ops = 24;
  opt.backend = "poll";
  const ClusterResult cp = run_cluster(opt);
  opt.backend = "epoll";
  const ClusterResult ce = run_cluster(opt);
  EXPECT_EQ(cp.values, ce.values);
  EXPECT_EQ(cp.load, ce.load);
  EXPECT_EQ(cp.total_messages, ce.total_messages);
}

TEST(Cluster, MultiLoopMultiShardTcp) {
  // v2 topology smoke: 2 nodes x 2 event loops x 2 runtime shards per
  // node, TCP. Exercises connection adoption (peer links sharded across
  // loops), the loop->runtime inject path, the per-loop wire-counter
  // snapshots in the stats barrier, and multi-shard quiescence.
  ClusterOptions opt = base_options();
  opt.counter = "tree";
  opt.nodes = 2;
  opt.loops = 2;
  opt.shards_per_node = 2;
  opt.ops = 48;
  const ClusterResult r = run_cluster(opt);
  EXPECT_TRUE(r.values_ok);
  EXPECT_GT(r.wire_msgs_sent, 0);
  EXPECT_EQ(r.wire_msgs_sent, r.wire_msgs_received);
}

TEST(Cluster, MultiLoopMultiShardUdp) {
  // Same topology over the datagram plane: every loop owns its own
  // send socket and drop RNG; only loop 0's port is advertised.
  ClusterOptions opt = base_options();
  opt.counter = "central";
  opt.nodes = 2;
  opt.loops = 2;
  opt.shards_per_node = 2;
  opt.ops = 48;
  opt.udp = true;
  opt.tick_us = 100;
  const ClusterResult r = run_cluster(opt);
  EXPECT_TRUE(r.values_ok);
  EXPECT_GT(r.wire_msgs_sent, 0);
  EXPECT_EQ(r.injected_drops, 0);
}

TEST(Cluster, InlineDriveTcp) {
  // shards_per_node=0: the node spawns no protocol worker threads; its
  // event-loop thread drives the single runtime shard itself between
  // reactor passes. The degenerate topology for single-core hosts —
  // same protocol, same barrier code, no cross-thread hop per message.
  ClusterOptions opt = base_options();
  opt.counter = "tree";
  opt.nodes = 2;
  opt.shards_per_node = 0;
  opt.ops = 48;
  const ClusterResult r = run_cluster(opt);
  EXPECT_TRUE(r.values_ok);
  EXPECT_GT(r.wire_msgs_sent, 0);
  EXPECT_EQ(r.wire_msgs_sent, r.wire_msgs_received);
}

TEST(Cluster, InlineDriveUdpLossyFiresTimersInline) {
  // The inline path's timer machinery: retransmission timers are armed
  // by the reliable transport and must fire from the driving loop's own
  // clamped kernel wait (no worker thread exists to park on the
  // deadline), and the controller's time jump must wake the loop even
  // when no socket traffic is due.
  ClusterOptions opt = base_options();
  opt.counter = "central";
  opt.nodes = 2;
  opt.shards_per_node = 0;
  opt.ops = 48;
  opt.udp = true;
  opt.drop_probability = 0.15;
  opt.tick_us = 100;
  opt.retry.ack_timeout = 8;
  opt.retry.max_timeout = 64;
  opt.retry.max_attempts = 30;
  const ClusterResult r = run_cluster(opt);
  EXPECT_TRUE(r.values_ok);
  EXPECT_GT(r.injected_drops, 0);
  EXPECT_GT(r.retransmissions, 0);
  EXPECT_EQ(r.messages_abandoned, 0);
}

TEST(Cluster, PipelinedClosedLoopKeepsInvariants) {
  // --pipeline D multiplies the closed-loop window: every invariant the
  // D=1 runs check must survive D=8 — exact value permutation, the
  // quiescence barrier converging, and conservation (TCP wire sends ==
  // receives; m_p totals unchanged for chain protocols, see below).
  ClusterOptions opt = base_options();
  opt.counter = "tree";
  opt.ops = 96;
  opt.concurrency = 8;
  opt.pipeline = 8;
  const ClusterResult r = run_cluster(opt);
  EXPECT_TRUE(r.values_ok);
  EXPECT_EQ(r.ops, 96u);
  EXPECT_EQ(r.wire_msgs_sent, r.wire_msgs_received);
  EXPECT_GT(r.quiesce_rounds, 0);
}

TEST(Cluster, PipelineDepthDoesNotChangeCentralMessageCount) {
  // For the central counter every inc costs exactly 2 messages
  // regardless of interleaving, so m_p totals are pipeline-invariant:
  // depth changes only WHEN messages fly, never HOW MANY. This is the
  // cluster-side statement of the paper's accounting — the bottleneck
  // quantity is a property of the protocol, not of the client's
  // concurrency structure.
  ClusterOptions opt = base_options();
  opt.counter = "central";
  opt.min_processors = 16;
  opt.ops = 64;
  opt.pipeline = 1;
  const ClusterResult d1 = run_cluster(opt);
  opt.pipeline = 8;
  const ClusterResult d8 = run_cluster(opt);
  EXPECT_TRUE(d1.values_ok);
  EXPECT_TRUE(d8.values_ok);
  EXPECT_EQ(d1.total_messages, d8.total_messages);
  EXPECT_EQ(d1.max_load, d8.max_load);
  EXPECT_EQ(d1.bottleneck, 0);
  EXPECT_EQ(d8.bottleneck, 0);
}

TEST(Cluster, UdpLossyRecoversThroughReliableTransport) {
  ClusterOptions opt = base_options();
  opt.counter = "tree";
  opt.min_processors = 8;
  opt.ops = 48;
  opt.udp = true;
  opt.drop_probability = 0.15;
  opt.tick_us = 100;  // faster retransmission clock keeps the test quick
  opt.retry.ack_timeout = 8;
  opt.retry.max_timeout = 64;
  opt.retry.max_attempts = 30;  // never abandon under pure loss
  const ClusterResult r = run_cluster(opt);
  EXPECT_TRUE(r.values_ok);
  // The shim really dropped datagrams, and retransmission really ran.
  EXPECT_GT(r.injected_drops, 0);
  EXPECT_GT(r.retransmissions, 0);
  EXPECT_EQ(r.messages_abandoned, 0);
}

TEST(Cluster, KeyedFourNodesTcpBatched) {
  // The multi-key fabric across 4 real processes: batched keyed Starts
  // (kStartBatch) out, coalesced kCompleteBatch replies back, per-key
  // values verified as exact permutations of 0..ops_k-1 inside
  // run_cluster, per-key loads merged from the chunked kKeyedStats
  // reports.
  ClusterOptions opt = base_options();
  opt.counter = "central";
  opt.min_processors = 16;
  opt.ops = 96;
  opt.keys = 32;
  opt.key_dist = "zipf";
  opt.key_skew = 0.99;
  opt.batch = 8;
  const ClusterResult r = run_cluster(opt);
  EXPECT_TRUE(r.values_ok);
  EXPECT_EQ(r.keys, 32u);
  EXPECT_EQ(r.key_of_op.size(), 96u);
  EXPECT_GE(r.hot_key, 0);
  EXPECT_GT(r.hot_key_ops, 0);
  EXPECT_GT(r.hot_key_max_load, 0);
  EXPECT_GT(r.keys_touched, 1u);
  EXPECT_EQ(r.wire_msgs_sent, r.wire_msgs_received);
}

TEST(Cluster, KeyedBatchSizeDoesNotChangePerKeyLoads) {
  // Batching is an RPC transport optimization: how many schedule
  // entries share a frame must not change WHAT the protocol does. For
  // central every inc costs the same messages regardless of
  // interleaving, so the per-key bottleneck numbers and the totals must
  // be identical across batch sizes.
  ClusterOptions opt = base_options();
  opt.counter = "central";
  opt.min_processors = 16;
  opt.ops = 64;
  opt.keys = 16;
  opt.batch = 1;
  const ClusterResult b1 = run_cluster(opt);
  opt.batch = 8;
  const ClusterResult b8 = run_cluster(opt);
  EXPECT_TRUE(b1.values_ok);
  EXPECT_TRUE(b8.values_ok);
  EXPECT_EQ(b1.key_of_op, b8.key_of_op);  // schedule is seed-determined
  EXPECT_EQ(b1.hot_key, b8.hot_key);
  EXPECT_EQ(b1.hot_key_ops, b8.hot_key_ops);
  EXPECT_EQ(b1.hot_key_max_load, b8.hot_key_max_load);
  EXPECT_EQ(b1.hot_key_messages, b8.hot_key_messages);
  EXPECT_EQ(b1.total_messages, b8.total_messages);
  EXPECT_EQ(b1.max_load, b8.max_load);
  EXPECT_EQ(b1.keys_touched, b8.keys_touched);
}

TEST(Cluster, KeyedSequentialTcpDeterministicWithLru) {
  // Satellite of the LRU determinism contract, TCP half: same (seed,
  // schedule) driven sequentially over the real cluster must reproduce
  // the identical completion values AND the identical eviction activity
  // — each node's directory makes the same decisions in the same order,
  // so the summed counters match run to run.
  ClusterOptions opt = base_options();
  opt.counter = "central";
  opt.min_processors = 16;
  opt.nodes = 2;
  opt.ops = 48;
  opt.keys = 8;
  opt.key_capacity = 2;
  opt.quiesce_between_ops = true;
  const ClusterResult a = run_cluster(opt);
  const ClusterResult b = run_cluster(opt);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.key_of_op, b.key_of_op);
  EXPECT_EQ(a.load, b.load);
  EXPECT_GT(a.lru_evicts, 0);  // capacity 2 over 8 keys must evict
  EXPECT_GT(a.lru_rehydrates, 0);
  EXPECT_EQ(a.lru_hits, b.lru_hits);
  EXPECT_EQ(a.lru_misses, b.lru_misses);
  EXPECT_EQ(a.lru_evicts, b.lru_evicts);
  EXPECT_EQ(a.lru_rehydrates, b.lru_rehydrates);
  // Sequential keyed completions arrive in issue order: op i's value is
  // its key's running count at that point.
  std::unordered_map<KeyId, Value> next;
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i], next[a.key_of_op[i]]++) << "op " << i;
  }
}

TEST(Cluster, KeyedTcpMatchesInprocPerKeyBottleneck) {
  // Same (seed, schedule), same fabric — once in-process on the
  // threaded runtime, once as a 4-process TCP cluster. The hot key and
  // its per-key message accounting are schedule properties for central,
  // so the two runtimes must agree number for number: the paper's
  // per-key bottleneck is invariant to where the processors live.
  const std::size_t ops = 64;
  const std::uint64_t seed = 7;

  ThroughputOptions topt;
  topt.workers = 2;
  topt.ops = ops;
  topt.concurrency = 8;
  topt.seed = seed;
  KeyedOptions kopt;
  kopt.keys = 16;
  kopt.key_dist = "zipf";
  kopt.key_skew = 0.99;
  const KeyedThroughputResult inproc = run_keyed_throughput(
      make_counter(CounterKind::kCentral, 16), topt, kopt);

  ClusterOptions copt = base_options();
  copt.counter = "central";
  copt.min_processors = 16;
  copt.ops = ops;
  copt.seed = seed;
  copt.keys = 16;
  copt.key_dist = "zipf";
  copt.key_skew = 0.99;
  copt.batch = 4;
  const ClusterResult cluster = run_cluster(copt);

  EXPECT_EQ(cluster.hot_key, inproc.hot_key);
  EXPECT_EQ(cluster.hot_key_ops, inproc.hot_key_ops);
  EXPECT_EQ(cluster.hot_key_max_load, inproc.hot_key_max_load);
  EXPECT_EQ(cluster.hot_key_messages, inproc.hot_key_messages);
  EXPECT_EQ(cluster.keys_touched, inproc.keys_touched);
  EXPECT_EQ(cluster.total_messages, inproc.base.total_messages);
  EXPECT_EQ(cluster.max_load, inproc.base.max_load);
}

TEST(Cluster, KeyedUdpLossyKeepsEnvelopeKeyed) {
  // The keyed envelope rides inside the reliable transport's Data
  // frames, so a dropped datagram's retransmission must still carry its
  // key — otherwise the receiver would misroute the inner message to
  // key 0 and some key's values would no longer form a permutation
  // (run_cluster aborts on that).
  ClusterOptions opt = base_options();
  opt.counter = "central";
  opt.min_processors = 16;
  opt.nodes = 2;
  opt.ops = 48;
  opt.keys = 8;
  opt.udp = true;
  opt.drop_probability = 0.15;
  opt.tick_us = 100;
  opt.retry.ack_timeout = 8;
  opt.retry.max_timeout = 64;
  opt.retry.max_attempts = 30;
  const ClusterResult r = run_cluster(opt);
  EXPECT_TRUE(r.values_ok);
  EXPECT_GT(r.injected_drops, 0);
  EXPECT_GT(r.retransmissions, 0);
  EXPECT_EQ(r.messages_abandoned, 0);
}

TEST(Cluster, UdpCleanChannelHasNoRetransmissions) {
  ClusterOptions opt = base_options();
  opt.counter = "central";
  opt.min_processors = 8;
  opt.ops = 32;
  opt.udp = true;
  opt.drop_probability = 0.0;
  opt.tick_us = 100;
  const ClusterResult r = run_cluster(opt);
  EXPECT_TRUE(r.values_ok);
  EXPECT_EQ(r.injected_drops, 0);
  // Loopback datagrams under tiny load essentially never drop; allow
  // the odd kernel hiccup but require the common case.
  EXPECT_LE(r.messages_abandoned, 0);
}

}  // namespace
}  // namespace dcnt::net
