// The remaining quorum constructions the paper cites: hierarchical
// quorum consensus [KM96], weighted voting [GB85], and probe
// complexity [PW96].
#include <gtest/gtest.h>

#include <memory>

#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "quorum/crumbling_wall.hpp"
#include "quorum/grid.hpp"
#include "quorum/hierarchical.hpp"
#include "quorum/majority.hpp"
#include "quorum/probe.hpp"
#include "quorum/quorum_analysis.hpp"
#include "quorum/quorum_counter.hpp"
#include "quorum/weighted.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

// ---------- Hierarchical quorum consensus [KM96] ----------

class HierarchicalTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(HierarchicalTest, IntersectionHolds) {
  HierarchicalQuorum system(GetParam(), 3);
  Rng rng(1);
  const auto report = check_pairwise_intersection(system, 128, 5000, rng);
  EXPECT_TRUE(report.all_intersect)
      << "quorums " << report.bad_a << ", " << report.bad_b;
}

TEST_P(HierarchicalTest, QuorumSizeIsMajorityToTheLevels) {
  HierarchicalQuorum system(GetParam(), 3);
  for (std::size_t i = 0; i < std::min<std::size_t>(20, system.num_quorums());
       ++i) {
    EXPECT_EQ(static_cast<std::int64_t>(system.quorum(i).size()),
              system.quorum_size());
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfThree, HierarchicalTest,
                         ::testing::Values(3, 9, 27, 81));

TEST(Hierarchical, SizeBeatsMajorityAsymptotically) {
  // b=3: |Q| = 2^levels = n^(log3 2) ~ n^0.63 < n/2 + 1 for larger n.
  HierarchicalQuorum system(81, 3);
  EXPECT_EQ(system.quorum_size(), 16);  // 2^4
  EXPECT_LT(system.quorum_size(), 81 / 2 + 1);
}

TEST(Hierarchical, RejectsNonPowerSizes) {
  EXPECT_DEATH(HierarchicalQuorum(10, 3), "branching\\^levels");
}

TEST(Hierarchical, CounterRunsOnIt) {
  Simulator sim(std::make_unique<QuorumCounter>(
                    std::make_shared<HierarchicalQuorum>(27, 3)),
                SimConfig{});
  const RunResult result = run_sequential(sim, schedule_sequential(27));
  EXPECT_TRUE(result.values_ok);
}

// ---------- Weighted voting [GB85] ----------

TEST(WeightedVoting, UniformEqualsMajoritySize) {
  const auto system = WeightedMajorityQuorum::uniform(9);
  EXPECT_EQ(system->total_votes(), 9);
  for (std::size_t i = 0; i < system->num_quorums(); ++i) {
    EXPECT_EQ(system->quorum(i).size(), 5u);
  }
  Rng rng(2);
  EXPECT_TRUE(
      check_pairwise_intersection(*system, 128, 2000, rng).all_intersect);
}

TEST(WeightedVoting, LeaderShrinksQuorums) {
  const auto system = WeightedMajorityQuorum::weighted_leader(16, 0.45);
  Rng rng(3);
  EXPECT_TRUE(
      check_pairwise_intersection(*system, 128, 2000, rng).all_intersect);
  // Quorums containing the leader need only a few more votes.
  double mean_size = 0;
  for (std::size_t i = 0; i < system->num_quorums(); ++i) {
    mean_size += static_cast<double>(system->quorum(i).size());
  }
  mean_size /= static_cast<double>(system->num_quorums());
  EXPECT_LT(mean_size, 9.0);  // plain majority would need 9 of 16
}

TEST(WeightedVoting, DictatorshipConcentratesLoad) {
  // Leader holds > half the votes: every quorum contains processor 0 —
  // weighted voting sliding into the centralized hot spot.
  const auto system = WeightedMajorityQuorum::weighted_leader(10, 0.6);
  for (std::size_t i = 0; i < system->num_quorums(); ++i) {
    const auto q = system->quorum(i);
    EXPECT_TRUE(std::find(q.begin(), q.end(), 0) != q.end());
  }
  const auto load = rotation_load(*system, 100);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(load.hits[0]) / 100.0, 1.0);
}

TEST(WeightedVoting, ZeroVoteProcessorsNeverAppear) {
  WeightedMajorityQuorum system({0, 3, 0, 3, 3});
  for (std::size_t i = 0; i < system.num_quorums(); ++i) {
    for (const ProcessorId p : system.quorum(i)) {
      EXPECT_NE(p, 0);
      EXPECT_NE(p, 2);
    }
  }
}

TEST(WeightedVoting, CounterRunsOnIt) {
  Simulator sim(std::make_unique<QuorumCounter>(
                    std::shared_ptr<const QuorumSystem>(
                        WeightedMajorityQuorum::weighted_leader(12, 0.4))),
                SimConfig{});
  const RunResult result = run_sequential(sim, schedule_sequential(12));
  EXPECT_TRUE(result.values_ok);
}

// ---------- Probe complexity [PW96] ----------

TEST(ProbeComplexity, AllAliveCostsOneQuorum) {
  MajorityQuorum system(11);
  const ProbeRun run =
      greedy_probe(system, std::vector<bool>(11, false));
  EXPECT_TRUE(run.found_quorum);
  EXPECT_EQ(run.probes, 6);  // first majority checked member by member
}

TEST(ProbeComplexity, AllDeadIsCertifiedWithoutReprobing) {
  MajorityQuorum system(11);
  const ProbeRun run = greedy_probe(system, std::vector<bool>(11, true));
  EXPECT_FALSE(run.found_quorum);
  // The first dead probe kills every quorum containing it; the greedy
  // prober still has to disqualify the rest, but never probes the same
  // element twice, so at most n probes total.
  EXPECT_LE(run.probes, 11);
  EXPECT_GE(run.probes, 1);
}

TEST(ProbeComplexity, SingleDeadElementIsRoutedAround) {
  GridQuorum system(16, 4);
  std::vector<bool> dead(16, false);
  dead[0] = true;
  const ProbeRun run = greedy_probe(system, dead);
  EXPECT_TRUE(run.found_quorum);
}

TEST(ProbeComplexity, ReportIsInternallyConsistent) {
  Rng rng(7);
  CrumblingWall* wall_raw = nullptr;
  auto wall = CrumblingWall::triangle(21);
  wall_raw = wall.get();
  const auto report = probe_complexity(*wall_raw, 0.2, 200, rng);
  EXPECT_GT(report.all_alive, 0);
  EXPECT_GT(report.all_dead, 0);
  EXPECT_EQ(report.random_probes.count(), 200u);
  EXPECT_GE(report.find_rate, 0.0);
  EXPECT_LE(report.find_rate, 1.0);
  // With 20% deaths most runs still find a quorum in a crumbling wall.
  EXPECT_GT(report.find_rate, 0.5);
}

TEST(ProbeComplexity, DeathProbabilityDegradesFindRate) {
  Rng rng(8);
  MajorityQuorum system(15);
  const auto healthy = probe_complexity(system, 0.05, 200, rng);
  const auto sick = probe_complexity(system, 0.7, 200, rng);
  EXPECT_GT(healthy.find_rate, sick.find_rate);
}

}  // namespace
}  // namespace dcnt
