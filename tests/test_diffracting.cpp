#include "baselines/diffracting_tree.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

Simulator make_sim(DiffractingTreeParams params, SimConfig cfg = {}) {
  return Simulator(std::make_unique<DiffractingTreeCounter>(params), cfg);
}

const DiffractingTreeCounter& tree_of(const Simulator& sim) {
  return dynamic_cast<const DiffractingTreeCounter&>(sim.counter());
}

TEST(DiffractingTree, SequentialCorrectness) {
  DiffractingTreeParams params;
  params.n = 32;
  params.width = 4;
  Simulator sim = make_sim(params);
  const RunResult result = run_sequential(sim, schedule_sequential(32));
  EXPECT_TRUE(result.values_ok);
}

TEST(DiffractingTree, SequentialTokensAllTakeTheToggle) {
  // One token at a time: nothing to pair with, every token times out at
  // every level and crosses the toggle. depth * m toggle passes.
  DiffractingTreeParams params;
  params.n = 16;
  params.width = 8;  // depth 3
  Simulator sim = make_sim(params);
  run_sequential(sim, schedule_sequential(16));
  EXPECT_EQ(tree_of(sim).diffracted_pairs(), 0);
  EXPECT_EQ(tree_of(sim).toggle_passes(), 3 * 16);
}

class DiffractingParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DiffractingParamTest, ConcurrentDistinctValues) {
  const auto [width, slots, seed] = GetParam();
  DiffractingTreeParams params;
  params.n = 64;
  params.width = width;
  params.prism_slots = slots;
  params.patience = 6;
  SimConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.delay = DelayModel::uniform(1, 4);
  Simulator sim = make_sim(params, cfg);
  const auto batches = make_batches(schedule_sequential(64), 32);
  const RunResult result = run_concurrent(sim, batches);
  EXPECT_TRUE(result.values_ok);
  sim.counter().check_quiescent(sim.ops_completed());
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiffractingParamTest,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(1, 2, 8),
                                            ::testing::Values(1, 2)));

TEST(DiffractingTree, DiffractionFiresUnderConcurrency) {
  DiffractingTreeParams params;
  params.n = 128;
  params.width = 4;
  params.prism_slots = 2;  // few slots: pairing is likely
  params.patience = 50;    // patient tokens: pairing is very likely
  SimConfig cfg;
  cfg.seed = 8;
  cfg.delay = DelayModel::uniform(1, 3);
  Simulator sim = make_sim(params, cfg);
  run_concurrent(sim, make_batches(schedule_sequential(128), 128));
  EXPECT_GT(tree_of(sim).diffracted_pairs(), 0);
}

TEST(DiffractingTree, DiffractionRelievesRootToggle) {
  DiffractingTreeParams params;
  params.n = 128;
  params.width = 2;
  params.prism_slots = 4;
  params.patience = 60;
  SimConfig cfg;
  cfg.seed = 3;
  cfg.delay = DelayModel::uniform(1, 3);

  Simulator seq = make_sim(params, cfg);
  run_sequential(seq, schedule_sequential(128));
  const std::int64_t seq_toggle_load =
      seq.metrics().load(tree_of(seq).toggle_pid(0));

  Simulator conc = make_sim(params, cfg);
  run_concurrent(conc, make_batches(schedule_sequential(128), 128));
  const std::int64_t conc_toggle_load =
      conc.metrics().load(tree_of(conc).toggle_pid(0));

  EXPECT_LT(conc_toggle_load, seq_toggle_load);
}

TEST(DiffractingTree, TimeoutsAreNotNetworkTraffic) {
  DiffractingTreeParams params;
  params.n = 8;
  params.width = 2;
  Simulator sim = make_sim(params);
  run_sequential(sim, schedule_sequential(8));
  // Per op: prism hop, toggle hop, cell hop, value reply — at most 4
  // network messages (fewer when placements collide); timeouts add none.
  EXPECT_LE(sim.metrics().total_messages(), 4 * 8);
}

TEST(DiffractingTree, RepeatOriginsSequential) {
  DiffractingTreeParams params;
  params.n = 8;
  params.width = 4;
  Simulator sim = make_sim(params);
  Rng rng(12);
  const RunResult result = run_sequential(sim, schedule_uniform(8, 50, rng));
  EXPECT_TRUE(result.values_ok);
}

}  // namespace
}  // namespace dcnt
