// Shared-memory counter baselines (src/shm/, DESIGN.md §16): exactness
// and LIVE linearizability of all four counters on real threads at
// F ∈ {1, 64}, the flat-combining combiner-handoff edge case, the
// funnel's budget hand-off, the inc/read checker's own edge cases, and
// the placement layer (synthetic-topology plans + the pinning smoke).
#include "shm/shm_counter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "concurrent/history.hpp"
#include "runtime/placement.hpp"
#include "shm/flat_combining.hpp"
#include "shm/funnel.hpp"
#include "shm/shm_harness.hpp"

namespace dcnt::shm {
namespace {

// --- the four counters through the harness ------------------------------

ShmOptions small_run(std::size_t inflight) {
  ShmOptions o;
  o.threads = 4;
  o.ops = 4096;
  o.inflight = inflight;
  o.warmup = 128;
  return o;
}

class ShmCounterHarness : public ::testing::TestWithParam<ShmKind> {};

TEST_P(ShmCounterHarness, LinearizableAtF1) {
  const ThroughputResult r = run_shm_throughput(GetParam(), small_run(1));
  EXPECT_TRUE(r.values_ok);
  ASSERT_TRUE(r.lin_checked);
  EXPECT_TRUE(r.linearizable) << r.counter << ": " << r.lin_violations
                              << " violations";
  EXPECT_EQ(r.lin_violations, 0);
  EXPECT_EQ(r.ops, 4096u);
}

TEST_P(ShmCounterHarness, LinearizableAtF64) {
  const ThroughputResult r = run_shm_throughput(GetParam(), small_run(64));
  EXPECT_TRUE(r.values_ok);
  ASSERT_TRUE(r.lin_checked);
  EXPECT_TRUE(r.linearizable) << r.counter << ": " << r.lin_violations
                              << " violations";
  EXPECT_EQ(r.lin_violations, 0);
}

TEST_P(ShmCounterHarness, OpenLoopStaysExact) {
  ShmOptions o = small_run(1);
  o.ops = 1024;
  o.open_rate = 200000.0;  // fast enough to finish, slow enough to overlap
  const ThroughputResult r = run_shm_throughput(GetParam(), o);
  EXPECT_TRUE(r.values_ok);
  ASSERT_TRUE(r.lin_checked);
  EXPECT_TRUE(r.linearizable) << r.counter;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ShmCounterHarness,
                         ::testing::ValuesIn(all_shm_kinds()),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// Direct permutation evidence, independent of the harness' internal
// DCNT_CHECK: hammer a counter from raw threads and verify the ticket
// set by hand.
TEST(ShmCounters, TicketsArePermutation) {
  for (const ShmKind kind :
       {ShmKind::kAtomic, ShmKind::kFlat, ShmKind::kFunnel}) {
    auto counter = make_shm_counter(kind);
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kPer = 2000;
    counter->on_threads(kThreads);
    std::vector<std::vector<std::uint64_t>> got(kThreads);
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        for (std::size_t i = 0; i < kPer; ++i) {
          got[t].push_back(counter->inc_batch(t, 1));
        }
      });
    }
    for (auto& th : pool) th.join();
    std::vector<bool> seen(kThreads * kPer, false);
    for (const auto& v : got) {
      for (const std::uint64_t x : v) {
        ASSERT_LT(x, seen.size()) << to_string(kind);
        ASSERT_FALSE(seen[x]) << to_string(kind) << " duplicate ticket " << x;
        seen[x] = true;
      }
    }
    EXPECT_EQ(counter->read(), kThreads * kPer) << to_string(kind);
  }
}

TEST(ShmCounters, BatchReservesContiguousRange) {
  for (const ShmKind kind :
       {ShmKind::kAtomic, ShmKind::kFlat, ShmKind::kFunnel}) {
    auto counter = make_shm_counter(kind);
    counter->on_threads(1);
    EXPECT_EQ(counter->inc_batch(0, 10), 0u) << to_string(kind);
    EXPECT_EQ(counter->inc_batch(0, 5), 10u) << to_string(kind);
    EXPECT_EQ(counter->read(), 15u) << to_string(kind);
    EXPECT_TRUE(counter->returns_value());
  }
}

TEST(ShmCounters, ShardedIsExactAtQuiescence) {
  auto counter = make_shm_counter(ShmKind::kSharded);
  constexpr std::size_t kThreads = 4;
  counter->on_threads(kThreads);
  EXPECT_FALSE(counter->returns_value());
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < 5000; ++i) counter->inc_batch(t, 1);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(counter->read(), kThreads * 5000u);
}

// --- flat combining: the combiner-handoff edge case ---------------------

TEST(FlatCombining, AbandonedRequesterSelfServes) {
  FlatCombiningCounter fc;
  fc.on_threads(2);
  // Become the combiner WITHOUT draining anything: any request
  // published from now on is invisible to this "combiner".
  ASSERT_TRUE(fc.try_lock_combiner_for_test());

  std::atomic<bool> published{false};
  std::atomic<std::uint64_t> got{~0ull};
  std::thread requester([&] {
    published.store(true, std::memory_order_release);
    // Blocks: the lock is held and no one will serve the slot.
    got.store(fc.inc_batch(1, 1), std::memory_order_release);
  });
  while (!published.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Let the requester publish and reach its spin loop, then observe the
  // non-empty publication list the exiting combiner leaves behind.
  while (fc.pending_publications_for_test() == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(fc.read(), 0u);  // nobody served it
  // Release without combining — the abandoned requester must elect
  // itself combiner and self-serve, not hang.
  fc.unlock_combiner_for_test();
  requester.join();
  EXPECT_EQ(got.load(std::memory_order_acquire), 0u);
  EXPECT_EQ(fc.read(), 1u);
}

// --- funnel: forced lock hand-off ---------------------------------------

TEST(Funnel, BudgetOneForcesHandoff) {
  // With budget 1 a combiner serves itself plus at most one successor,
  // then hands the lock on — so a long queue exercises the kOwner wakeup
  // path many times. Exactness after the storm proves every hand-off
  // carried the committed count.
  FunnelCounter funnel(/*combine_budget=*/1);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPer = 3000;
  funnel.on_threads(kThreads);
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPer; ++i) {
        got[t].push_back(funnel.inc_batch(t, 1));
      }
    });
  }
  for (auto& th : pool) th.join();
  std::vector<bool> seen(kThreads * kPer, false);
  for (const auto& v : got) {
    for (const std::uint64_t x : v) {
      ASSERT_LT(x, seen.size());
      ASSERT_FALSE(seen[x]) << "duplicate ticket " << x;
      seen[x] = true;
    }
  }
  EXPECT_EQ(funnel.read(), kThreads * kPer);
}

// --- the inc/read checker's own edge cases ------------------------------

CounterOpRecord rec(OpId op, SimTime inv, SimTime resp, Value value) {
  return CounterOpRecord{op, inv, resp, value};
}

TEST(IncReadChecker, ValidHistoryPasses) {
  // inc0 done before the read starts, inc1 overlaps it: the read may
  // report 1 or 2.
  const std::vector<CounterOpRecord> incs = {rec(0, 0, 5, 0),
                                             rec(1, 8, 20, 0)};
  for (const Value v : {Value{1}, Value{2}}) {
    const auto report = check_inc_read_linearizable(
        incs, {rec(10, 10, 15, v)});
    EXPECT_TRUE(report.linearizable) << "read=" << v;
  }
}

TEST(IncReadChecker, ReadBelowLowerBoundIsFlagged) {
  // The inc responded (t=5) before the read was invoked (t=10), so the
  // read must count it; 0 is a violation.
  const auto report = check_inc_read_linearizable({rec(0, 0, 5, 0)},
                                                  {rec(10, 10, 15, 0)});
  EXPECT_FALSE(report.linearizable);
  EXPECT_GE(report.violations, 1);
  EXPECT_EQ(report.first_a, 10);
}

TEST(IncReadChecker, ReadAboveUpperBoundIsFlagged) {
  // Only one inc was even invoked before the read responded; seeing 2
  // counts an inc from the future.
  const auto report = check_inc_read_linearizable({rec(0, 0, 5, 0)},
                                                  {rec(10, 10, 15, 2)});
  EXPECT_FALSE(report.linearizable);
  EXPECT_GE(report.violations, 1);
}

TEST(IncReadChecker, NonMonotoneReadsAreFlagged) {
  // Both values sit inside their interval bounds, but the second read
  // starts after the first responded and reports LESS — time ran
  // backwards for an observer.
  const std::vector<CounterOpRecord> incs = {rec(0, 0, 100, 0),
                                             rec(1, 0, 100, 0)};
  const auto report = check_inc_read_linearizable(
      incs, {rec(10, 1, 2, 2), rec(11, 3, 4, 1)});
  EXPECT_FALSE(report.linearizable);
  EXPECT_GE(report.violations, 1);
}

TEST(IncReadChecker, ConcurrentReadsMayDisagree) {
  // The two reads overlap each other, so 2-then-1 is fine — the
  // monotonicity constraint only binds real-time-ordered pairs.
  const std::vector<CounterOpRecord> incs = {rec(0, 0, 100, 0),
                                             rec(1, 0, 100, 0)};
  const auto report = check_inc_read_linearizable(
      incs, {rec(10, 1, 50, 2), rec(11, 2, 49, 1)});
  EXPECT_TRUE(report.linearizable);
}

// --- placement plans on synthetic topologies ----------------------------

CpuTopology two_socket_smt() {
  // 2 packages x 2 cores x 2 SMT threads; sysfs-style numbering where
  // cpu i and cpu i+4 are siblings on the same core.
  CpuTopology topo;
  topo.from_sysfs = true;
  for (int cpu = 0; cpu < 8; ++cpu) {
    topo.cpus.push_back(CpuInfo{cpu, cpu % 4, (cpu % 4) / 2});
  }
  return topo;
}

TEST(PlacementPlan, NonePinsNothing) {
  const PlacementPlan plan = plan_placement(two_socket_smt(),
                                            Placement::kNone, 4);
  EXPECT_EQ(plan.cpu_for(0), -1);
  EXPECT_TRUE(plan.cpus.empty());
}

TEST(PlacementPlan, CompactFillsSiblingsFirst) {
  const PlacementPlan plan = plan_placement(two_socket_smt(),
                                            Placement::kCompact, 4);
  ASSERT_TRUE(plan.supported);
  // Topology order: package 0 core 0 gets both siblings before core 1.
  EXPECT_EQ(plan.cpu_for(0), 0);
  EXPECT_EQ(plan.cpu_for(1), 4);
  EXPECT_EQ(plan.cpu_for(2), 1);
  EXPECT_EQ(plan.cpu_for(3), 5);
}

TEST(PlacementPlan, ScatterStridesAcrossCores) {
  const PlacementPlan plan = plan_placement(two_socket_smt(),
                                            Placement::kScatter, 8);
  ASSERT_TRUE(plan.supported);
  // First pass: one CPU per physical core (4 distinct cores), before
  // any SMT sibling is reused.
  std::vector<int> first_pass = {plan.cpu_for(0), plan.cpu_for(1),
                                 plan.cpu_for(2), plan.cpu_for(3)};
  std::vector<bool> core_hit(4, false);
  for (const int cpu : first_pass) {
    const int core = cpu % 4;
    EXPECT_FALSE(core_hit[core]) << "core " << core << " reused early";
    core_hit[core] = true;
  }
}

TEST(PlacementPlan, TreeCoLocatesNeighbours) {
  const PlacementPlan plan = plan_placement(two_socket_smt(),
                                            Placement::kTree, 4);
  ASSERT_TRUE(plan.supported);
  // One CPU per physical core in core-id order: consecutive shards on
  // adjacent cores (that's what turns tree adjacency into cache
  // adjacency).
  EXPECT_EQ(plan.cpu_for(0) % 4, 0);
  EXPECT_EQ(plan.cpu_for(1) % 4, 1);
  EXPECT_EQ(plan.cpu_for(2) % 4, 2);
  EXPECT_EQ(plan.cpu_for(3) % 4, 3);
}

TEST(PlacementPlan, WorkersWrapAroundCpus) {
  const PlacementPlan plan = plan_placement(two_socket_smt(),
                                            Placement::kCompact, 16);
  ASSERT_TRUE(plan.supported);
  EXPECT_EQ(plan.cpu_for(8), plan.cpu_for(0));
  EXPECT_EQ(plan.cpu_for(15), plan.cpu_for(7));
}

// --- pinning smoke: applies or cleanly reports unsupported --------------

TEST(PinningSmoke, HarnessAppliesOrReportsUnsupported) {
  ShmOptions o = small_run(1);
  o.ops = 512;
  o.placement = Placement::kCompact;
  const ThroughputResult r = run_shm_throughput(ShmKind::kAtomic, o);
  EXPECT_EQ(r.placement, "compact");
  if (r.placement_supported) {
    // Supported host: every harness thread pinned, none half-applied.
    EXPECT_EQ(r.pinned_workers, o.threads);
  } else {
    // Unsupported host: a clean no-op, zero pins, run still exact.
    EXPECT_EQ(r.pinned_workers, 0u);
  }
  EXPECT_TRUE(r.values_ok);
}

TEST(PinningSmoke, SelfPinMatchesPlanSupport) {
  const PlacementPlan plan = plan_placement(Placement::kCompact, 1);
  const bool pinned = pin_thread_to_cpu(plan.cpu_for(0));
  if (plan.supported) {
    EXPECT_TRUE(pinned);
  } else {
    EXPECT_FALSE(pinned);  // graceful no-op, not an abort
  }
  EXPECT_FALSE(pin_thread_to_cpu(-1));  // kNone sentinel never pins
}

}  // namespace
}  // namespace dcnt::shm
