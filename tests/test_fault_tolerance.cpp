// Fault tolerance end to end: the reliable transport over lossy
// channels, and the self-healing tree counter surviving processor
// crashes — the counter stays a counter (distinct consecutive values in
// initiation order) while the fault plane does its worst.
#include "faults/retry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/tree_counter.hpp"
#include "core/tree_service.hpp"
#include "harness/runner.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

std::vector<ProcessorId> order_skipping(std::int64_t n, std::int64_t ops,
                                        ProcessorId skip) {
  std::vector<ProcessorId> order;
  ProcessorId p = 0;
  while (static_cast<std::int64_t>(order.size()) < ops) {
    if (p != skip) order.push_back(p);
    p = static_cast<ProcessorId>((p + 1) % n);
  }
  return order;
}

const TreeService& tree_of(const Simulator& sim) {
  const auto& transport = dynamic_cast<const ReliableTransport&>(sim.counter());
  return dynamic_cast<const TreeService&>(transport.inner());
}

TEST(ReliableTransport, RecoversFromHeavyLoss) {
  // A *plain* (non-healing) tree counter over 20%-lossy channels: the
  // transport's retransmissions alone must preserve exact counter
  // semantics, because the inner protocol still sees every surviving
  // message exactly once.
  SimConfig cfg;
  cfg.seed = 7;
  cfg.delay = DelayModel::uniform(1, 4);
  cfg.faults.drop_probability = 0.2;
  TreeServiceParams params;
  params.k = 2;
  RetryParams retry;
  retry.ack_timeout = 8;
  retry.max_timeout = 64;
  retry.max_attempts = 20;
  Simulator sim(std::make_unique<ReliableTransport>(
                    std::make_unique<TreeCounter>(params), retry),
                cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  ASSERT_EQ(n, 8);
  const RunResult result =
      run_sequential(sim, order_skipping(n, 2 * n, /*skip=*/-1));
  EXPECT_TRUE(result.values_ok);
  const auto& transport = dynamic_cast<const ReliableTransport&>(sim.counter());
  EXPECT_GT(transport.stats().retransmissions, 0);
  EXPECT_GT(sim.fault_plane().stats().random_drops, 0);
  EXPECT_EQ(transport.stats().messages_abandoned, 0);
}

TEST(ReliableTransport, SuppressesFaultPlaneDuplicates) {
  SimConfig cfg;
  cfg.seed = 3;
  cfg.delay = DelayModel::uniform(1, 6);
  cfg.faults.duplicate_probability = 0.5;
  TreeServiceParams params;
  params.k = 2;
  Simulator sim(std::make_unique<ReliableTransport>(
                    std::make_unique<TreeCounter>(params), RetryParams{}),
                cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  const RunResult result =
      run_sequential(sim, order_skipping(n, 2 * n, /*skip=*/-1));
  EXPECT_TRUE(result.values_ok);
  const auto& transport = dynamic_cast<const ReliableTransport&>(sim.counter());
  EXPECT_GT(transport.stats().duplicates_suppressed, 0);
}

TEST(ReliableTransport, NameAndCloneRoundTrip) {
  TreeServiceParams params;
  params.k = 2;
  ReliableTransport t(std::make_unique<TreeCounter>(params), RetryParams{});
  EXPECT_EQ(t.name(), "reliable(" + t.inner().name() + ")");
  auto clone = t.clone_counter();
  EXPECT_EQ(clone->name(), t.name());
  EXPECT_TRUE(t.try_assign_from(*clone));
}

TEST(SelfHealing, RawLossyChannelsEndToEndRetry) {
  // No transport at all: the healing counter's own origin-side retries
  // plus the root's journal must survive a 10%-lossy network (with
  // retirement disabled so handover messages are never at risk).
  SimConfig cfg;
  cfg.seed = 11;
  cfg.delay = DelayModel::uniform(1, 4);
  cfg.faults.drop_probability = 0.1;
  TreeServiceParams params;
  params.k = 2;
  params.age_threshold = 1'000'000;  // no voluntary retirement
  params.self_healing = true;
  params.inc_retry_timeout = 32;
  Simulator sim(std::make_unique<TreeCounter>(params), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  const RunResult result =
      run_sequential(sim, order_skipping(n, 3 * n, /*skip=*/-1));
  EXPECT_TRUE(result.values_ok);
  const auto& tree = dynamic_cast<const TreeService&>(sim.counter());
  EXPECT_GT(tree.stats().timeouts_fired, 0);
  EXPECT_GT(tree.stats().retransmissions, 0);
  EXPECT_GT(tree.stats().replayed_replies + tree.stats().backups_sent, 0);
  EXPECT_EQ(tree.stats().crash_handovers, 0);
}

TEST(SelfHealing, HealingModeWithoutFaultsStaysExact) {
  // Healing machinery at rest: no faults, voluntary retirements on —
  // serials, backups and gating must not disturb counter semantics.
  SimConfig cfg;
  cfg.seed = 5;
  cfg.delay = DelayModel::uniform(1, 4);
  TreeServiceParams params;
  params.k = 2;
  params.self_healing = true;
  Simulator sim(std::make_unique<TreeCounter>(params), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  const RunResult result =
      run_sequential(sim, order_skipping(n, 4 * n, /*skip=*/-1));
  EXPECT_TRUE(result.values_ok);
  const auto& tree = dynamic_cast<const TreeService&>(sim.counter());
  EXPECT_GT(tree.stats().retirements_total, 0);  // retirements still work
  EXPECT_GT(tree.stats().backups_sent, 0);
  EXPECT_EQ(tree.stats().crash_handovers, 0);
}

TEST(SelfHealing, RootCrashMidSequenceRecovers) {
  // The headline acceptance scenario: crash-stop the root incumbent in
  // the middle of a sequential workload, over 5%-lossy channels, and
  // every operation must still return distinct consecutive values in
  // initiation order (run_sequential aborts otherwise).
  SimConfig cfg;
  cfg.seed = 17;
  cfg.delay = DelayModel::uniform(1, 4);
  cfg.faults.drop_probability = 0.05;
  cfg.faults.crashes.push_back({0, 300, -1});  // the initial root
  TreeServiceParams params;
  params.k = 2;
  params.age_threshold = 1'000'000;  // keep processor 0 the incumbent
  params.self_healing = true;
  params.inc_retry_timeout = 48;
  RetryParams retry;
  retry.ack_timeout = 8;
  retry.max_timeout = 32;
  retry.max_attempts = 4;
  Simulator sim(make_fault_tolerant_tree_counter(params, retry), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  ASSERT_EQ(n, 8);
  // Processor 0 is crashed from t=300 on; never initiate there.
  const RunResult result =
      run_sequential(sim, order_skipping(n, 3 * n, /*skip=*/0));
  EXPECT_TRUE(result.values_ok);
  const TreeService& tree = tree_of(sim);
  EXPECT_GE(tree.stats().crash_handovers, 1);
  EXPECT_GT(sim.fault_plane().stats().crash_drops, 0);
  // The new incumbent is a real processor and it is not the corpse.
  EXPECT_NE(tree.incumbent(0), kNoProcessor);
  EXPECT_NE(tree.incumbent(0), 0);
}

TEST(SelfHealing, NonRootCrashRecovers) {
  // Crash a level-1 incumbent (pool size k^(k-1) = 2 for k=2): its pool
  // successor must take over via promotion and traffic through that
  // subtree must keep completing.
  SimConfig cfg;
  cfg.seed = 23;
  cfg.delay = DelayModel::uniform(1, 4);
  cfg.faults.crashes.push_back({2, 250, -1});  // initial incumbent of node 2
  TreeServiceParams params;
  params.k = 2;
  params.age_threshold = 1'000'000;
  params.self_healing = true;
  params.inc_retry_timeout = 48;
  RetryParams retry;
  retry.ack_timeout = 8;
  retry.max_timeout = 32;
  retry.max_attempts = 4;
  Simulator sim(make_fault_tolerant_tree_counter(params, retry), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  const RunResult result =
      run_sequential(sim, order_skipping(n, 3 * n, /*skip=*/2));
  EXPECT_TRUE(result.values_ok);
  const TreeService& tree = tree_of(sim);
  EXPECT_GE(tree.stats().crash_handovers, 1);
  EXPECT_EQ(tree.incumbent(2), 3);  // node 2's pool is {2, 3}
}

TEST(SelfHealing, CrashRecoveryIsDeterministic) {
  // Same (schedule, seed) => the same crash recovery, message for
  // message — snapshots included.
  const auto run = [] {
    SimConfig cfg;
    cfg.seed = 29;
    cfg.delay = DelayModel::uniform(1, 4);
    cfg.faults.drop_probability = 0.05;
    cfg.faults.crashes.push_back({0, 200, -1});
    TreeServiceParams params;
    params.k = 2;
    params.age_threshold = 1'000'000;
    params.self_healing = true;
    params.inc_retry_timeout = 48;
    RetryParams retry;
    retry.ack_timeout = 8;
    retry.max_timeout = 32;
    retry.max_attempts = 4;
    Simulator sim(make_fault_tolerant_tree_counter(params, retry), cfg);
    const auto n = static_cast<std::int64_t>(sim.num_processors());
    run_sequential(sim, order_skipping(n, 2 * n, /*skip=*/0));
    return sim;
  };
  const Simulator a = run();
  const Simulator b = run();
  EXPECT_EQ(a.deliveries(), b.deliveries());
  EXPECT_EQ(a.metrics().max_load(), b.metrics().max_load());
  const TreeService& ta = tree_of(a);
  const TreeService& tb = tree_of(b);
  EXPECT_EQ(ta.stats().crash_handovers, tb.stats().crash_handovers);
  EXPECT_EQ(ta.stats().retransmissions, tb.stats().retransmissions);
  EXPECT_EQ(ta.stats().backups_sent, tb.stats().backups_sent);
  EXPECT_EQ(a.fault_plane().stats().crash_drops,
            b.fault_plane().stats().crash_drops);
}

TEST(SelfHealing, SnapshotRestoreAcrossACrash) {
  // Snapshot before the crash instant, run through recovery twice (once
  // in a restored scratch, once in a fresh clone): identical outcomes.
  SimConfig cfg;
  cfg.seed = 31;
  cfg.delay = DelayModel::uniform(1, 4);
  cfg.faults.crashes.push_back({0, 220, -1});
  TreeServiceParams params;
  params.k = 2;
  params.age_threshold = 1'000'000;
  params.self_healing = true;
  params.inc_retry_timeout = 48;
  RetryParams retry;
  retry.ack_timeout = 8;
  retry.max_timeout = 32;
  retry.max_attempts = 4;
  Simulator sim(make_fault_tolerant_tree_counter(params, retry), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  run_sequential(sim, order_skipping(n, 4, /*skip=*/0));  // pre-crash ops
  const Simulator snap = sim.snapshot();

  Simulator scratch(sim);
  run_sequential(scratch, {5, 6});  // diverge
  scratch.restore(snap);
  Simulator fresh(snap);
  const RunResult ra = run_sequential(scratch, order_skipping(n, n, 0));
  const RunResult rb = run_sequential(fresh, order_skipping(n, n, 0));
  EXPECT_TRUE(ra.values_ok);
  EXPECT_TRUE(rb.values_ok);
  EXPECT_EQ(scratch.deliveries(), fresh.deliveries());
  EXPECT_EQ(tree_of(scratch).stats().crash_handovers,
            tree_of(fresh).stats().crash_handovers);
  EXPECT_GE(tree_of(fresh).stats().crash_handovers, 1);
}

TEST(SelfHealingDeath, ConcurrentOpsPerOriginAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TreeServiceParams params;
  params.k = 2;
  params.self_healing = true;
  EXPECT_DEATH(
      {
        Simulator sim(std::make_unique<TreeCounter>(params), SimConfig{});
        sim.begin_inc(1);
        sim.begin_inc(1);  // second op at the same origin, first in flight
      },
      "one outstanding");
}

}  // namespace
}  // namespace dcnt
