// Fault tolerance end to end: the reliable transport over lossy
// channels, and the self-healing tree counter surviving processor
// crashes — the counter stays a counter (distinct consecutive values in
// initiation order) while the fault plane does its worst.
#include "faults/retry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/tree_counter.hpp"
#include "core/tree_service.hpp"
#include "harness/runner.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

std::vector<ProcessorId> order_skipping(std::int64_t n, std::int64_t ops,
                                        ProcessorId skip) {
  std::vector<ProcessorId> order;
  ProcessorId p = 0;
  while (static_cast<std::int64_t>(order.size()) < ops) {
    if (p != skip) order.push_back(p);
    p = static_cast<ProcessorId>((p + 1) % n);
  }
  return order;
}

const TreeService& tree_of(const Simulator& sim) {
  const auto& transport = dynamic_cast<const ReliableTransport&>(sim.counter());
  return dynamic_cast<const TreeService&>(transport.inner());
}

TEST(ReliableTransport, RecoversFromHeavyLoss) {
  // A *plain* (non-healing) tree counter over 20%-lossy channels: the
  // transport's retransmissions alone must preserve exact counter
  // semantics, because the inner protocol still sees every surviving
  // message exactly once.
  SimConfig cfg;
  cfg.seed = 7;
  cfg.delay = DelayModel::uniform(1, 4);
  cfg.faults.drop_probability = 0.2;
  TreeServiceParams params;
  params.k = 2;
  RetryParams retry;
  retry.ack_timeout = 8;
  retry.max_timeout = 64;
  retry.max_attempts = 20;
  Simulator sim(std::make_unique<ReliableTransport>(
                    std::make_unique<TreeCounter>(params), retry),
                cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  ASSERT_EQ(n, 8);
  const RunResult result =
      run_sequential(sim, order_skipping(n, 2 * n, /*skip=*/-1));
  EXPECT_TRUE(result.values_ok);
  const auto& transport = dynamic_cast<const ReliableTransport&>(sim.counter());
  EXPECT_GT(transport.stats().retransmissions, 0);
  EXPECT_GT(sim.fault_plane().stats().random_drops, 0);
  EXPECT_EQ(transport.stats().messages_abandoned, 0);
}

TEST(ReliableTransport, SuppressesFaultPlaneDuplicates) {
  SimConfig cfg;
  cfg.seed = 3;
  cfg.delay = DelayModel::uniform(1, 6);
  cfg.faults.duplicate_probability = 0.5;
  TreeServiceParams params;
  params.k = 2;
  Simulator sim(std::make_unique<ReliableTransport>(
                    std::make_unique<TreeCounter>(params), RetryParams{}),
                cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  const RunResult result =
      run_sequential(sim, order_skipping(n, 2 * n, /*skip=*/-1));
  EXPECT_TRUE(result.values_ok);
  const auto& transport = dynamic_cast<const ReliableTransport&>(sim.counter());
  EXPECT_GT(transport.stats().duplicates_suppressed, 0);
}

TEST(ReliableTransport, NameAndCloneRoundTrip) {
  TreeServiceParams params;
  params.k = 2;
  ReliableTransport t(std::make_unique<TreeCounter>(params), RetryParams{});
  EXPECT_EQ(t.name(), "reliable(" + t.inner().name() + ")");
  auto clone = t.clone_counter();
  EXPECT_EQ(clone->name(), t.name());
  EXPECT_TRUE(t.try_assign_from(*clone));
}

TEST(SelfHealing, RawLossyChannelsEndToEndRetry) {
  // No transport at all: the healing counter's own origin-side retries
  // plus the root's journal must survive a 10%-lossy network (with
  // retirement disabled so handover messages are never at risk).
  SimConfig cfg;
  cfg.seed = 11;
  cfg.delay = DelayModel::uniform(1, 4);
  cfg.faults.drop_probability = 0.1;
  TreeServiceParams params;
  params.k = 2;
  params.age_threshold = 1'000'000;  // no voluntary retirement
  params.self_healing = true;
  params.inc_retry_timeout = 32;
  Simulator sim(std::make_unique<TreeCounter>(params), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  const RunResult result =
      run_sequential(sim, order_skipping(n, 3 * n, /*skip=*/-1));
  EXPECT_TRUE(result.values_ok);
  const auto& tree = dynamic_cast<const TreeService&>(sim.counter());
  EXPECT_GT(tree.stats().timeouts_fired, 0);
  EXPECT_GT(tree.stats().retransmissions, 0);
  EXPECT_GT(tree.stats().replayed_replies + tree.stats().backups_sent, 0);
  EXPECT_EQ(tree.stats().crash_handovers, 0);
}

TEST(SelfHealing, HealingModeWithoutFaultsStaysExact) {
  // Healing machinery at rest: no faults, voluntary retirements on —
  // serials, backups and gating must not disturb counter semantics.
  SimConfig cfg;
  cfg.seed = 5;
  cfg.delay = DelayModel::uniform(1, 4);
  TreeServiceParams params;
  params.k = 2;
  params.self_healing = true;
  Simulator sim(std::make_unique<TreeCounter>(params), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  const RunResult result =
      run_sequential(sim, order_skipping(n, 4 * n, /*skip=*/-1));
  EXPECT_TRUE(result.values_ok);
  const auto& tree = dynamic_cast<const TreeService&>(sim.counter());
  EXPECT_GT(tree.stats().retirements_total, 0);  // retirements still work
  EXPECT_GT(tree.stats().backups_sent, 0);
  EXPECT_EQ(tree.stats().crash_handovers, 0);
}

TEST(SelfHealing, RootCrashMidSequenceRecovers) {
  // The headline acceptance scenario: crash-stop the root incumbent in
  // the middle of a sequential workload, over 5%-lossy channels, and
  // every operation must still return distinct consecutive values in
  // initiation order (run_sequential aborts otherwise).
  SimConfig cfg;
  cfg.seed = 17;
  cfg.delay = DelayModel::uniform(1, 4);
  cfg.faults.drop_probability = 0.05;
  cfg.faults.crashes.push_back({0, 300, -1});  // the initial root
  TreeServiceParams params;
  params.k = 2;
  params.age_threshold = 1'000'000;  // keep processor 0 the incumbent
  params.self_healing = true;
  params.inc_retry_timeout = 48;
  RetryParams retry;
  retry.ack_timeout = 8;
  retry.max_timeout = 32;
  retry.max_attempts = 4;
  Simulator sim(make_fault_tolerant_tree_counter(params, retry), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  ASSERT_EQ(n, 8);
  // Processor 0 is crashed from t=300 on; never initiate there.
  const RunResult result =
      run_sequential(sim, order_skipping(n, 3 * n, /*skip=*/0));
  EXPECT_TRUE(result.values_ok);
  const TreeService& tree = tree_of(sim);
  EXPECT_GE(tree.stats().crash_handovers, 1);
  EXPECT_GT(sim.fault_plane().stats().crash_drops, 0);
  // The new incumbent is a real processor and it is not the corpse.
  EXPECT_NE(tree.incumbent(0), kNoProcessor);
  EXPECT_NE(tree.incumbent(0), 0);
}

TEST(SelfHealing, NonRootCrashRecovers) {
  // Crash a level-1 incumbent (pool size k^(k-1) = 2 for k=2): its pool
  // successor must take over via promotion and traffic through that
  // subtree must keep completing.
  SimConfig cfg;
  cfg.seed = 23;
  cfg.delay = DelayModel::uniform(1, 4);
  cfg.faults.crashes.push_back({2, 250, -1});  // initial incumbent of node 2
  TreeServiceParams params;
  params.k = 2;
  params.age_threshold = 1'000'000;
  params.self_healing = true;
  params.inc_retry_timeout = 48;
  RetryParams retry;
  retry.ack_timeout = 8;
  retry.max_timeout = 32;
  retry.max_attempts = 4;
  Simulator sim(make_fault_tolerant_tree_counter(params, retry), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  const RunResult result =
      run_sequential(sim, order_skipping(n, 3 * n, /*skip=*/2));
  EXPECT_TRUE(result.values_ok);
  const TreeService& tree = tree_of(sim);
  EXPECT_GE(tree.stats().crash_handovers, 1);
  EXPECT_EQ(tree.incumbent(2), 3);  // node 2's pool is {2, 3}
}

TEST(SelfHealing, CrashRecoveryIsDeterministic) {
  // Same (schedule, seed) => the same crash recovery, message for
  // message — snapshots included.
  const auto run = [] {
    SimConfig cfg;
    cfg.seed = 29;
    cfg.delay = DelayModel::uniform(1, 4);
    cfg.faults.drop_probability = 0.05;
    cfg.faults.crashes.push_back({0, 200, -1});
    TreeServiceParams params;
    params.k = 2;
    params.age_threshold = 1'000'000;
    params.self_healing = true;
    params.inc_retry_timeout = 48;
    RetryParams retry;
    retry.ack_timeout = 8;
    retry.max_timeout = 32;
    retry.max_attempts = 4;
    Simulator sim(make_fault_tolerant_tree_counter(params, retry), cfg);
    const auto n = static_cast<std::int64_t>(sim.num_processors());
    run_sequential(sim, order_skipping(n, 2 * n, /*skip=*/0));
    return sim;
  };
  const Simulator a = run();
  const Simulator b = run();
  EXPECT_EQ(a.deliveries(), b.deliveries());
  EXPECT_EQ(a.metrics().max_load(), b.metrics().max_load());
  const TreeService& ta = tree_of(a);
  const TreeService& tb = tree_of(b);
  EXPECT_EQ(ta.stats().crash_handovers, tb.stats().crash_handovers);
  EXPECT_EQ(ta.stats().retransmissions, tb.stats().retransmissions);
  EXPECT_EQ(ta.stats().backups_sent, tb.stats().backups_sent);
  EXPECT_EQ(a.fault_plane().stats().crash_drops,
            b.fault_plane().stats().crash_drops);
}

TEST(SelfHealing, SnapshotRestoreAcrossACrash) {
  // Snapshot before the crash instant, run through recovery twice (once
  // in a restored scratch, once in a fresh clone): identical outcomes.
  SimConfig cfg;
  cfg.seed = 31;
  cfg.delay = DelayModel::uniform(1, 4);
  cfg.faults.crashes.push_back({0, 220, -1});
  TreeServiceParams params;
  params.k = 2;
  params.age_threshold = 1'000'000;
  params.self_healing = true;
  params.inc_retry_timeout = 48;
  RetryParams retry;
  retry.ack_timeout = 8;
  retry.max_timeout = 32;
  retry.max_attempts = 4;
  Simulator sim(make_fault_tolerant_tree_counter(params, retry), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  run_sequential(sim, order_skipping(n, 4, /*skip=*/0));  // pre-crash ops
  const Simulator snap = sim.snapshot();

  Simulator scratch(sim);
  run_sequential(scratch, {5, 6});  // diverge
  scratch.restore(snap);
  Simulator fresh(snap);
  const RunResult ra = run_sequential(scratch, order_skipping(n, n, 0));
  const RunResult rb = run_sequential(fresh, order_skipping(n, n, 0));
  EXPECT_TRUE(ra.values_ok);
  EXPECT_TRUE(rb.values_ok);
  EXPECT_EQ(scratch.deliveries(), fresh.deliveries());
  EXPECT_EQ(tree_of(scratch).stats().crash_handovers,
            tree_of(fresh).stats().crash_handovers);
  EXPECT_GE(tree_of(fresh).stats().crash_handovers, 1);
}

TEST(SelfHealingDeath, ConcurrentOpsPerOriginAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TreeServiceParams params;
  params.k = 2;
  params.self_healing = true;
  EXPECT_DEATH(
      {
        Simulator sim(std::make_unique<TreeCounter>(params), SimConfig{});
        sim.begin_inc(1);
        sim.begin_inc(1);  // second op at the same origin, first in flight
      },
      "one outstanding");
}

// --- transport edge cases, driven without a simulator ---------------------
//
// A fake Context plus a probe inner protocol let these tests hit the
// transport's receive and timeout paths with surgically chosen message
// sequences — duplicate storms and blackholed channels that a seeded
// fault plane only produces by luck.

/// Records everything the transport does; drops cross-processor sends
/// when `blackhole` is set (the peer never sees data, the sender never
/// sees acks).
class RecordingCtx final : public Context {
 public:
  void send(Message msg) override {
    if (!blackhole) sent.push_back(std::move(msg));
  }
  void send_local(ProcessorId p, std::int32_t tag,
                  std::vector<std::int64_t> args, SimTime delay) override {
    Message msg;
    msg.src = p;
    msg.dst = p;
    msg.tag = tag;
    msg.args = std::move(args);
    msg.local = true;
    timers.push_back(std::move(msg));
    (void)delay;
  }
  void complete(OpId op, Value value) override {
    (void)op;
    (void)value;
  }
  SimTime now() const override { return time; }
  Rng& rng() override { return rng_; }

  bool blackhole{false};
  SimTime time{0};
  std::vector<Message> sent;
  std::vector<Message> timers;

 private:
  Rng rng_{1};
};

/// Two-processor inner protocol: start_inc sends one payload 0 -> 1;
/// counts deliveries and unreachable upcalls.
class ProbeProtocol final : public CounterProtocol {
 public:
  static constexpr std::int32_t kTagPayload = 42;

  std::size_t num_processors() const override { return 2; }
  void start_inc(Context& ctx, ProcessorId origin, OpId op) override {
    Message msg;
    msg.src = origin;
    msg.dst = 1;
    msg.tag = kTagPayload;
    msg.op = op;
    msg.args = {7};
    ctx.send(std::move(msg));
  }
  void start_op(Context& ctx, ProcessorId origin, OpId op,
                const std::vector<std::int64_t>& args) override {
    (void)args;
    start_inc(ctx, origin, op);
  }
  void on_message(Context& ctx, const Message& msg) override {
    (void)ctx;
    delivered.push_back(msg);
  }
  void on_peer_unreachable(Context& ctx, ProcessorId self,
                           ProcessorId peer) override {
    (void)ctx;
    unreachable.push_back({self, peer});
  }
  std::unique_ptr<CounterProtocol> clone_counter() const override {
    return std::make_unique<ProbeProtocol>(*this);
  }
  std::string name() const override { return "probe"; }

  std::vector<Message> delivered;
  std::vector<std::pair<ProcessorId, ProcessorId>> unreachable;
};

Message data_envelope(std::int64_t seq, OpId op = 5) {
  Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.tag = ReliableTransport::kTagData;
  msg.op = op;
  msg.args = {seq, ProbeProtocol::kTagPayload, 7};
  return msg;
}

TEST(ReliableTransportEdge, DuplicateStormHitsDedupWindow) {
  // Storm the receiver: every envelope delivered five times, one of
  // them (seq 3) arriving out of order so the dedup window's sparse
  // tail is exercised alongside the contiguous watermark. The inner
  // protocol must see each seq exactly once; every copy must still be
  // acked (the previous ack may have been the thing that was lost).
  ReliableTransport transport(std::make_unique<ProbeProtocol>(),
                              RetryParams{});
  auto& probe = dynamic_cast<ProbeProtocol&>(transport.mutable_inner());
  RecordingCtx ctx;

  const std::vector<std::int64_t> arrival_order = {0, 1, 3, 2, 4};
  constexpr int kCopies = 5;
  for (int copy = 0; copy < kCopies; ++copy) {
    for (const std::int64_t seq : arrival_order) {
      transport.on_message(ctx, data_envelope(seq));
    }
  }

  ASSERT_EQ(probe.delivered.size(), arrival_order.size());
  // First pass delivered each seq once, in arrival order.
  EXPECT_EQ(probe.delivered[2].tag, ProbeProtocol::kTagPayload);
  EXPECT_EQ(probe.delivered[2].args, (std::vector<std::int64_t>{7}));
  const auto total =
      static_cast<std::int64_t>(arrival_order.size() * kCopies);
  EXPECT_EQ(transport.stats().duplicates_suppressed,
            total - static_cast<std::int64_t>(arrival_order.size()));
  EXPECT_EQ(transport.stats().acks_sent, total);
  // Every ack went back to the sender, duplicates included.
  std::int64_t acks = 0;
  for (const Message& msg : ctx.sent) {
    if (msg.tag == ReliableTransport::kTagAck) ++acks;
  }
  EXPECT_EQ(acks, total);
}

TEST(ReliableTransportEdge, PeerUnreachableFiresExactlyOnce) {
  // Blackhole the channel and let the retransmission timer run to
  // exhaustion: max_attempts transmissions, then exactly one
  // on_peer_unreachable upcall — and a stale timer for the abandoned
  // seq must not produce a second one.
  RetryParams retry;
  retry.ack_timeout = 4;
  retry.max_timeout = 16;
  retry.max_attempts = 3;
  ReliableTransport transport(std::make_unique<ProbeProtocol>(), retry);
  auto& probe = dynamic_cast<ProbeProtocol&>(transport.mutable_inner());
  RecordingCtx ctx;
  ctx.blackhole = true;

  transport.start_inc(ctx, 0, 0);
  EXPECT_EQ(transport.unacked_total(), 1);

  // Pump armed timers back into the transport until it gives up.
  int fired = 0;
  while (!ctx.timers.empty()) {
    ASSERT_LT(fired, 100) << "timer loop did not terminate";
    Message timer = std::move(ctx.timers.front());
    ctx.timers.erase(ctx.timers.begin());
    transport.on_message(ctx, timer);
    ++fired;
  }

  EXPECT_EQ(transport.stats().retransmissions, retry.max_attempts - 1);
  EXPECT_EQ(transport.stats().messages_abandoned, 1);
  EXPECT_EQ(transport.unacked_total(), 0);
  ASSERT_EQ(probe.unreachable.size(), 1u);
  EXPECT_EQ(probe.unreachable[0], std::make_pair(ProcessorId{0},
                                                 ProcessorId{1}));

  // A stale duplicate of the final timer finds no pending send and
  // must be a no-op, not a second failure report.
  Message stale;
  stale.src = 0;
  stale.dst = 0;
  stale.tag = ReliableTransport::kTagTimer;
  stale.args = {1, 0};
  stale.local = true;
  transport.on_message(ctx, stale);
  EXPECT_EQ(probe.unreachable.size(), 1u);
  EXPECT_EQ(transport.stats().messages_abandoned, 1);
}

}  // namespace
}  // namespace dcnt
