#include "core/tree_counter.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

Simulator make_tree_sim(TreeCounterParams params, SimConfig cfg) {
  return Simulator(std::make_unique<TreeCounter>(params), cfg);
}

const TreeCounter& tree_of(const Simulator& sim) {
  return dynamic_cast<const TreeCounter&>(sim.counter());
}

TEST(TreeCounter, SingleIncFollowsThePath) {
  TreeCounterParams params;
  params.k = 2;
  Simulator sim = make_tree_sim(params, {});
  const OpId op = sim.begin_inc(5);
  sim.run_until_quiescent();
  ASSERT_TRUE(sim.result(op).has_value());
  EXPECT_EQ(*sim.result(op), 0);
  // Path: leaf -> level2 -> level1 -> root, then root -> leaf: k+2 = 4
  // messages (no retirement on the very first inc with threshold 4k=8).
  EXPECT_EQ(sim.metrics().total_messages(), 4);
  EXPECT_EQ(tree_of(sim).stats().retirements_total, 0);
}

TEST(TreeCounter, FullSequenceReturnsDistinctOrderedValues) {
  TreeCounterParams params;
  params.k = 3;
  Simulator sim = make_tree_sim(params, {});
  const auto order = schedule_sequential(81);
  const RunResult result = run_sequential(sim, order);
  EXPECT_TRUE(result.values_ok);
  EXPECT_EQ(result.values.size(), 81u);
  EXPECT_EQ(tree_of(sim).value(), 81);
  tree_of(sim).deep_check();
}

class TreeCounterSeedTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(TreeCounterSeedTest, CorrectUnderRandomDeliveryAndOrder) {
  const int k = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  const bool fifo = std::get<2>(GetParam());
  TreeCounterParams params;
  params.k = k;
  SimConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.delay = DelayModel::uniform(1, 16);
  cfg.fifo_channels = fifo;
  Simulator sim = make_tree_sim(params, cfg);
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 1);
  const auto order =
      schedule_permutation(static_cast<std::int64_t>(sim.num_processors()), rng);
  const RunResult result = run_sequential(sim, order);
  EXPECT_TRUE(result.values_ok);
  tree_of(sim).deep_check();
  // The paper's workload never exhausts a replacement pool.
  EXPECT_EQ(tree_of(sim).stats().pool_wraps, 0);
  EXPECT_EQ(tree_of(sim).stats().self_handovers, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeCounterSeedTest,
    ::testing::Combine(::testing::Values(2, 3, 4), ::testing::Values(1, 2, 3),
                       ::testing::Bool()));

TEST(TreeCounter, HeavyTailDeliveryStillCorrect) {
  TreeCounterParams params;
  params.k = 3;
  SimConfig cfg;
  cfg.seed = 99;
  cfg.delay = DelayModel::heavy_tail(1, 1000);
  Simulator sim = make_tree_sim(params, cfg);
  const RunResult result = run_sequential(sim, schedule_reverse(81));
  EXPECT_TRUE(result.values_ok);
  tree_of(sim).deep_check();
}

TEST(TreeCounter, RetirementActuallyHappens) {
  TreeCounterParams params;
  params.k = 3;
  Simulator sim = make_tree_sim(params, {});
  run_sequential(sim, schedule_sequential(81));
  const auto& stats = tree_of(sim).stats();
  EXPECT_GT(stats.retirements_total, 0);
  // The root is on every path: it must have retired several times.
  const auto& log = tree_of(sim).retirement_log();
  std::int64_t root_retirements = 0;
  for (const auto& ev : log) {
    if (ev.node == 0) ++root_retirements;
  }
  EXPECT_GT(root_retirements, 5);
}

TEST(TreeCounter, RootIncumbentWalksForward) {
  TreeCounterParams params;
  params.k = 3;
  Simulator sim = make_tree_sim(params, {});
  run_sequential(sim, schedule_sequential(81));
  ProcessorId prev = 0;  // root starts at processor 0
  for (const auto& ev : tree_of(sim).retirement_log()) {
    if (ev.node != 0) continue;
    EXPECT_EQ(ev.old_pid, prev);
    EXPECT_EQ(ev.new_pid, prev + 1);  // id_new = id_old + 1
    prev = ev.new_pid;
  }
  EXPECT_EQ(tree_of(sim).incumbent(0), prev);
}

TEST(TreeCounter, StaticTreeNeverRetiresAndRootIsHotSpot) {
  auto counter = make_static_tree_counter(3);
  Simulator sim(std::move(counter), {});
  run_sequential(sim, schedule_sequential(81));
  const auto& tc = tree_of(sim);
  EXPECT_EQ(tc.stats().retirements_total, 0);
  // Root incumbent (processor 0) receives one inc and sends one value
  // per operation; it also serves the level-1 node 0 role.
  EXPECT_GE(sim.metrics().load(0), 2 * 81);
  EXPECT_EQ(tc.value(), 81);
}

TEST(TreeCounter, MisdirectedMessagesAreForwardedNotLost) {
  // With random delays, new-id notifications race the next handover;
  // the forwarding path must absorb them. Run many ops and require the
  // run to stay correct whether or not forwarding fired; across this
  // sweep it fires with overwhelming probability.
  std::int64_t forwarded = 0;
  for (int seed = 1; seed <= 5; ++seed) {
    TreeCounterParams params;
    params.k = 3;
    SimConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(seed);
    cfg.delay = DelayModel::uniform(1, 32);
    Simulator sim = make_tree_sim(params, cfg);
    run_sequential(sim, schedule_sequential(81));
    forwarded += tree_of(sim).stats().forwarded_messages;
    tree_of(sim).deep_check();
  }
  EXPECT_GT(forwarded, 0);
}

TEST(TreeCounter, AggressiveThresholdStillCorrect) {
  // The minimal *stable* threshold is k+2: every retirement ages its
  // k+1 neighbours by one message each, so thresholds <= k+1 have
  // reproduction factor (k+1)/T >= 1 and cascade forever (a
  // "retirement storm" — see DESIGN.md). k+2 is subcritical and must
  // still be correct, though pools may wrap.
  TreeCounterParams params;
  params.k = 3;
  params.age_threshold = params.k + 2;
  SimConfig cfg;
  cfg.seed = 3;
  cfg.delay = DelayModel::uniform(1, 8);
  Simulator sim = make_tree_sim(params, cfg);
  const RunResult result = run_sequential(sim, schedule_sequential(81));
  EXPECT_TRUE(result.values_ok);
  // Aggressive retirement may exhaust pools (wrap) — allowed, counted,
  // and still correct.
  tree_of(sim).deep_check();
}

TEST(TreeCounter, SubcriticalThresholdSpectrumStaysCorrect) {
  for (const std::int64_t threshold : {5LL, 6LL, 8LL, 12LL, 24LL, 64LL}) {
    TreeCounterParams params;
    params.k = 3;
    params.age_threshold = threshold;
    SimConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(threshold);
    cfg.delay = DelayModel::uniform(1, 4);
    Simulator sim = make_tree_sim(params, cfg);
    const RunResult result = run_sequential(sim, schedule_sequential(81));
    EXPECT_TRUE(result.values_ok) << "threshold " << threshold;
  }
}

TEST(TreeCounter, CountHandoverInAgeVariantCorrect) {
  TreeCounterParams params;
  params.k = 3;
  params.count_handover_in_age = true;
  Simulator sim = make_tree_sim(params, {});
  const RunResult result = run_sequential(sim, schedule_sequential(81));
  EXPECT_TRUE(result.values_ok);
  tree_of(sim).deep_check();
}

TEST(TreeCounter, BottleneckLoadIsOrderKAcrossSizes) {
  // The headline: max load grows like k, not like n.
  std::vector<double> per_k;
  for (int k = 2; k <= 5; ++k) {
    TreeCounterParams params;
    params.k = k;
    Simulator sim = make_tree_sim(params, {});
    const auto n = static_cast<std::int64_t>(sim.num_processors());
    run_sequential(sim, schedule_sequential(n));
    per_k.push_back(static_cast<double>(sim.metrics().max_load()) / k);
  }
  // Constant factor stays bounded (empirically ~11-18) while n grows
  // from 8 to 15625 — i.e. the load is Theta(k).
  for (const double c : per_k) {
    EXPECT_GT(c, 2.0);
    EXPECT_LT(c, 30.0);
  }
}

TEST(TreeCounter, CloneMidRunContinuesCorrectly) {
  TreeCounterParams params;
  params.k = 3;
  Simulator sim = make_tree_sim(params, {});
  run_sequential(sim, schedule_sequential(40));
  Simulator clone(sim);
  // Finish the sequence on both; they must agree.
  std::vector<ProcessorId> rest;
  for (ProcessorId p = 40; p < 81; ++p) rest.push_back(p);
  const RunResult a = run_sequential(sim, rest);
  const RunResult b = run_sequential(clone, rest);
  EXPECT_TRUE(a.values_ok);
  EXPECT_TRUE(b.values_ok);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(sim.metrics().total_messages(), clone.metrics().total_messages());
}

TEST(TreeCounter, NameReflectsConfiguration) {
  TreeCounterParams params;
  params.k = 4;
  EXPECT_EQ(TreeCounter(params).name(), "tree(k=4,T=16)");
  EXPECT_EQ(make_static_tree_counter(3)->name(), "static-tree(k=3)");
}

TEST(TreeCounter, MultipleIncsPerProcessorAlsoWork) {
  // Out-of-model workload (the paper assumes one inc per processor);
  // the protocol itself keeps working, pools may wrap.
  TreeCounterParams params;
  params.k = 2;
  Simulator sim = make_tree_sim(params, {});
  Rng rng(17);
  const auto order = schedule_uniform(8, 200, rng);
  const RunResult result = run_sequential(sim, order);
  EXPECT_TRUE(result.values_ok);
  EXPECT_EQ(tree_of(sim).value(), 200);
}

}  // namespace
}  // namespace dcnt
