#include "baselines/central.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

TEST(CentralCounter, SequentialCorrectness) {
  Simulator sim(std::make_unique<CentralCounter>(16), {});
  const RunResult result = run_sequential(sim, schedule_sequential(16));
  EXPECT_TRUE(result.values_ok);
}

TEST(CentralCounter, HolderIncrementsLocally) {
  Simulator sim(std::make_unique<CentralCounter>(8, 3), {});
  const OpId op = sim.begin_inc(3);
  EXPECT_TRUE(sim.result(op).has_value());
  EXPECT_EQ(*sim.result(op), 0);
  EXPECT_EQ(sim.metrics().total_messages(), 0);
}

TEST(CentralCounter, TwoMessagesPerRemoteInc) {
  Simulator sim(std::make_unique<CentralCounter>(8), {});
  run_sequential(sim, schedule_sequential(8));
  // 7 remote incs at 2 messages; the holder's own inc is free.
  EXPECT_EQ(sim.metrics().total_messages(), 14);
}

TEST(CentralCounter, HolderIsTheBottleneckWithThetaNLoad) {
  const std::int64_t n = 64;
  Simulator sim(std::make_unique<CentralCounter>(n), {});
  run_sequential(sim, schedule_sequential(n));
  EXPECT_EQ(sim.metrics().bottleneck(), 0);
  EXPECT_EQ(sim.metrics().max_load(), 2 * (n - 1));
  // Everyone else touched exactly two messages.
  for (ProcessorId p = 1; p < n; ++p) {
    EXPECT_EQ(sim.metrics().load(p), 2);
  }
}

TEST(CentralCounter, ConcurrentBatchesStillDistinct) {
  SimConfig cfg;
  cfg.seed = 12;
  cfg.delay = DelayModel::uniform(1, 9);
  Simulator sim(std::make_unique<CentralCounter>(32), cfg);
  const auto batches = make_batches(schedule_sequential(32), 8);
  const RunResult result = run_concurrent(sim, batches);
  EXPECT_TRUE(result.values_ok);
}

TEST(CentralCounter, CheckQuiescentValidatesValue) {
  Simulator sim(std::make_unique<CentralCounter>(4), {});
  run_sequential(sim, schedule_sequential(4));
  sim.counter().check_quiescent(4);
}

}  // namespace
}  // namespace dcnt
