#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "baselines/central.hpp"
#include "harness/factory.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

TEST(Schedule, SequentialAndReverse) {
  EXPECT_EQ(schedule_sequential(4), (std::vector<ProcessorId>{0, 1, 2, 3}));
  EXPECT_EQ(schedule_reverse(4), (std::vector<ProcessorId>{3, 2, 1, 0}));
}

TEST(Schedule, PermutationIsPermutation) {
  Rng rng(1);
  auto order = schedule_permutation(100, rng);
  EXPECT_EQ(order.size(), 100u);
  std::sort(order.begin(), order.end());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Schedule, PermutationDependsOnSeed) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(schedule_permutation(50, a), schedule_permutation(50, b));
}

TEST(Schedule, UniformInRange) {
  Rng rng(7);
  const auto order = schedule_uniform(10, 1000, rng);
  EXPECT_EQ(order.size(), 1000u);
  for (const auto p : order) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 10);
  }
}

TEST(Schedule, ZipfSkewsTowardZero) {
  Rng rng(3);
  const auto order = schedule_zipf(100, 10000, 1.2, rng);
  std::int64_t zero_hits = 0;
  for (const auto p : order) {
    if (p == 0) ++zero_hits;
  }
  // Zipf(1.2) over 100 elements gives element 0 far more than 1/100.
  EXPECT_GT(zero_hits, 1000);
}

TEST(Schedule, ZipfZeroIsUniformish) {
  Rng rng(4);
  const auto order = schedule_zipf(10, 10000, 0.0, rng);
  std::vector<int> hits(10, 0);
  for (const auto p : order) ++hits[static_cast<std::size_t>(p)];
  for (const int h : hits) {
    EXPECT_GT(h, 600);
    EXPECT_LT(h, 1400);
  }
}

TEST(Schedule, SingleOrigin) {
  const auto order = schedule_single_origin(5, 3);
  EXPECT_EQ(order, (std::vector<ProcessorId>{5, 5, 5}));
}

TEST(Runner, MakeBatches) {
  const auto batches = make_batches({0, 1, 2, 3, 4}, 2);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0], (std::vector<ProcessorId>{0, 1}));
  EXPECT_EQ(batches[2], (std::vector<ProcessorId>{4}));
}

TEST(Runner, SequentialReportsLoads) {
  Simulator sim(std::make_unique<CentralCounter>(8), {});
  const RunResult result = run_sequential(sim, schedule_sequential(8));
  EXPECT_TRUE(result.values_ok);
  EXPECT_EQ(result.total_messages, 14);
  EXPECT_EQ(result.max_load, 14);
  EXPECT_EQ(result.bottleneck, 0);
  EXPECT_DOUBLE_EQ(result.mean_load, 2.0 * 14 / 8);
  EXPECT_EQ(result.values, (std::vector<Value>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Runner, SequentialResumesAfterPriorOps) {
  Simulator sim(std::make_unique<CentralCounter>(4), {});
  run_sequential(sim, {0, 1});
  const RunResult result = run_sequential(sim, {2, 3});
  EXPECT_EQ(result.values, (std::vector<Value>{2, 3}));
}

TEST(Factory, AllKindsBuildAndCount) {
  for (const CounterKind kind : all_counter_kinds()) {
    auto counter = make_counter(kind, 30);
    ASSERT_NE(counter, nullptr) << to_string(kind);
    EXPECT_GE(counter->num_processors(), 30u) << to_string(kind);
    SimConfig cfg;
    cfg.seed = 42;
    Simulator sim(std::move(counter), cfg);
    const RunResult result = run_sequential(sim, schedule_sequential(10));
    EXPECT_TRUE(result.values_ok) << to_string(kind);
  }
}

TEST(Factory, RoundTripNames) {
  for (const CounterKind kind : all_counter_kinds()) {
    EXPECT_EQ(counter_kind_from_string(to_string(kind)), kind);
  }
}

TEST(Factory, TreeRoundsUpToPaperSizes) {
  EXPECT_EQ(make_counter(CounterKind::kTree, 9)->num_processors(), 81u);
  EXPECT_EQ(make_counter(CounterKind::kTree, 81)->num_processors(), 81u);
  EXPECT_EQ(make_counter(CounterKind::kTree, 82)->num_processors(), 1024u);
  EXPECT_EQ(make_counter(CounterKind::kCentral, 82)->num_processors(), 82u);
}

}  // namespace
}  // namespace dcnt
