#include "analysis/concentration.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/central.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

TEST(Concentration, UniformLoadsAreFlat) {
  const auto report = concentration(std::vector<std::int64_t>(100, 7));
  EXPECT_DOUBLE_EQ(report.max_over_mean, 1.0);
  EXPECT_NEAR(report.gini, 0.0, 1e-9);
  EXPECT_NEAR(report.top10_share, 0.10, 1e-9);
}

TEST(Concentration, SingleHotSpotIsMaximal) {
  std::vector<std::int64_t> loads(100, 0);
  loads[42] = 1000;
  const auto report = concentration(loads);
  EXPECT_DOUBLE_EQ(report.max_over_mean, 100.0);
  EXPECT_NEAR(report.gini, 0.99, 1e-9);  // 1 - 1/n
  EXPECT_DOUBLE_EQ(report.top1_share, 1.0);
  EXPECT_DOUBLE_EQ(report.top10_share, 1.0);
}

TEST(Concentration, AllZeroLoadsAreDefined) {
  const auto report = concentration(std::vector<std::int64_t>(10, 0));
  EXPECT_DOUBLE_EQ(report.gini, 0.0);
  EXPECT_DOUBLE_EQ(report.max_over_mean, 0.0);
}

TEST(Concentration, TwoClassDistribution) {
  // Half the processors at 2, half at 0: Gini = 0.5 exactly.
  std::vector<std::int64_t> loads;
  for (int i = 0; i < 50; ++i) loads.push_back(0);
  for (int i = 0; i < 50; ++i) loads.push_back(2);
  const auto report = concentration(loads);
  EXPECT_NEAR(report.gini, 0.5, 1e-2);
  EXPECT_DOUBLE_EQ(report.max_over_mean, 2.0);
}

TEST(Concentration, CentralCounterFarMoreConcentratedThanTree) {
  SimConfig cfg;
  cfg.seed = 4;
  Simulator central(std::make_unique<CentralCounter>(81), cfg);
  run_sequential(central, schedule_sequential(81));
  const auto central_report = concentration(central.metrics());

  TreeCounterParams params;
  params.k = 3;
  Simulator tree(std::make_unique<TreeCounter>(params), cfg);
  run_sequential(tree, schedule_sequential(81));
  const auto tree_report = concentration(tree.metrics());

  EXPECT_GT(central_report.gini, tree_report.gini);
  EXPECT_GT(central_report.max_over_mean, 5 * tree_report.max_over_mean);
  EXPECT_GT(central_report.top1_share, 0.4);  // the holder does ~half the work
}

TEST(Concentration, MetricsOverloadMatchesVectorOverload) {
  Metrics metrics(4);
  metrics.on_send(0, 0, 1);
  metrics.on_receive(1, 1);
  metrics.on_receive(1, 1);
  const auto from_metrics = concentration(metrics);
  const auto from_vector =
      concentration(std::vector<std::int64_t>{1, 2, 0, 0});
  EXPECT_DOUBLE_EQ(from_metrics.gini, from_vector.gini);
  EXPECT_DOUBLE_EQ(from_metrics.max_over_mean, from_vector.max_over_mean);
}

}  // namespace
}  // namespace dcnt
