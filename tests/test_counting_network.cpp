#include "baselines/counting_network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

Simulator make_sim(std::int64_t n, int width, SimConfig cfg = {}) {
  CountingNetworkParams params;
  params.n = n;
  params.width = width;
  return Simulator(std::make_unique<CountingNetworkCounter>(params), cfg);
}

const CountingNetworkCounter& network_of(const Simulator& sim) {
  return dynamic_cast<const CountingNetworkCounter&>(sim.counter());
}

TEST(CountingNetwork, BalancerCountMatchesBitonicFormula) {
  // Bitonic[w] has (w/2) * log2(w) * (log2(w)+1) / 2 balancers.
  for (int w : {2, 4, 8, 16, 32, 64}) {
    Simulator sim = make_sim(w, w);
    int log_w = 0;
    while ((1 << log_w) < w) ++log_w;
    const std::size_t expected = static_cast<std::size_t>(w) / 2 *
                                 static_cast<std::size_t>(log_w) *
                                 static_cast<std::size_t>(log_w + 1) / 2;
    EXPECT_EQ(network_of(sim).num_balancers(), expected) << "w=" << w;
    EXPECT_EQ(network_of(sim).depth(), log_w * (log_w + 1) / 2);
  }
}

TEST(CountingNetwork, OutputOrderIsAPermutation) {
  for (int w : {2, 4, 8, 16, 32}) {
    Simulator sim = make_sim(w, w);
    auto order = network_of(sim).output_order();
    std::sort(order.begin(), order.end());
    for (int i = 0; i < w; ++i) {
      EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    }
  }
}

TEST(CountingNetwork, SequentialCorrectness) {
  Simulator sim = make_sim(32, 8);
  const RunResult result = run_sequential(sim, schedule_sequential(32));
  EXPECT_TRUE(result.values_ok);
}

class CountingNetworkParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CountingNetworkParamTest, StepPropertyUnderConcurrency) {
  const auto [width, seed] = GetParam();
  SimConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.delay = DelayModel::uniform(1, 17);
  const std::int64_t n = std::max<std::int64_t>(width * 2, 16);
  Simulator sim = make_sim(n, width, cfg);
  // Three waves of concurrent tokens; check_quiescent (called by the
  // runner via the harness at the end of each batch... here explicitly)
  // enforces the exact step property at every quiescent point.
  Rng rng(static_cast<std::uint64_t>(seed) + 99);
  const auto order = schedule_uniform(n, 3 * n, rng);
  const RunResult result = run_concurrent(sim, make_batches(order, n / 2));
  EXPECT_TRUE(result.values_ok);
  sim.counter().check_quiescent(sim.ops_completed());
}

INSTANTIATE_TEST_SUITE_P(Sweep, CountingNetworkParamTest,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16),
                                            ::testing::Values(1, 2, 3)));

TEST(CountingNetwork, TokensVisitEveryLayerOnce) {
  // Each token crosses exactly depth balancers and one cell: with
  // tracing, one op generates depth+2 messages (entry hop + depth-1
  // inter-balancer hops + cell hop + reply)... message count per op is
  // depth + 2 when no two consecutive elements share a processor.
  // Self-placements make some hops free, so we assert via balancer
  // visit counts instead: after m sequential ops the total number of
  // balancer visits is m * depth.
  const int w = 8;
  Simulator sim = make_sim(64, w);
  const std::int64_t m = 64;
  run_sequential(sim, schedule_sequential(m));
  std::int64_t visits = 0;
  for (std::size_t b = 0; b < network_of(sim).num_balancers(); ++b) {
    visits += network_of(sim).balancer_visits(b);
  }
  EXPECT_EQ(visits, m * network_of(sim).depth());
}

TEST(CountingNetwork, LoadSpreadsOverBalancers) {
  // No single processor should carry the whole stream: compare with the
  // central counter's 2(n-1) bottleneck.
  const std::int64_t n = 128;
  Simulator sim = make_sim(n, 16);
  run_sequential(sim, schedule_sequential(n));
  EXPECT_LT(sim.metrics().max_load(), 2 * (n - 1));
}

// ---------- Periodic network [AHS91, after DPRS] ----------

TEST(PeriodicNetwork, DepthIsLogSquared) {
  for (int w : {2, 4, 8, 16, 32}) {
    CountingNetworkParams params;
    params.n = 2 * w;
    params.width = w;
    params.kind = NetworkKind::kPeriodic;
    Simulator sim(std::make_unique<CountingNetworkCounter>(params), {});
    int log_w = 0;
    while ((1 << log_w) < w) ++log_w;
    EXPECT_EQ(network_of(sim).depth(), log_w * log_w) << "w=" << w;
    EXPECT_EQ(network_of(sim).num_balancers(),
              static_cast<std::size_t>(w / 2 * log_w * log_w));
  }
}

TEST(PeriodicNetwork, OutputsInNaturalOrder) {
  CountingNetworkParams params;
  params.n = 16;
  params.width = 8;
  params.kind = NetworkKind::kPeriodic;
  Simulator sim(std::make_unique<CountingNetworkCounter>(params), {});
  const auto& order = network_of(sim).output_order();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

class PeriodicParamTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(PeriodicParamTest, CountsUnderConcurrency) {
  const auto [width, seed] = GetParam();
  CountingNetworkParams params;
  params.n = std::max(16, 2 * width);
  params.width = width;
  params.kind = NetworkKind::kPeriodic;
  SimConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.delay = DelayModel::uniform(1, 11);
  Simulator sim(std::make_unique<CountingNetworkCounter>(params), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  Rng rng(static_cast<std::uint64_t>(seed) + 3);
  const auto order = schedule_uniform(n, 4 * n, rng);
  const RunResult result =
      run_concurrent(sim, make_batches(order, static_cast<std::size_t>(n)));
  EXPECT_TRUE(result.values_ok);
  sim.counter().check_quiescent(sim.ops_completed());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PeriodicParamTest,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16),
                                            ::testing::Values(1, 2, 3)));

// Toy layered-network interpreter for construction regression tests:
// tokens advance one layer per scheduled step; returns true iff the
// step property held at quiescence.
namespace toy {

struct Net {
  int w{0};
  std::vector<std::vector<std::pair<int, int>>> layers;
};

Net butterfly_blocks(int w, int blocks) {
  Net net;
  net.w = w;
  int log_w = 0;
  while ((1 << log_w) < w) ++log_w;
  for (int b = 0; b < blocks; ++b) {
    for (int t = 0; t < log_w; ++t) {
      const int bit = 1 << (log_w - 1 - t);
      std::vector<std::pair<int, int>> layer;
      for (int i = 0; i < w; ++i) {
        if ((i & bit) == 0) layer.emplace_back(i, i | bit);
      }
      net.layers.push_back(std::move(layer));
    }
  }
  return net;
}

bool step_property_holds(const Net& net, int tokens, Rng& rng) {
  std::vector<std::vector<bool>> toggle(net.layers.size());
  for (std::size_t l = 0; l < net.layers.size(); ++l) {
    toggle[l].assign(net.layers[l].size(), false);
  }
  std::vector<int> wire(static_cast<std::size_t>(tokens));
  std::vector<int> layer(static_cast<std::size_t>(tokens), 0);
  for (int i = 0; i < tokens; ++i) {
    // Random entry wires: balancer networks must count regardless of
    // where tokens enter — uneven entry is exactly what breaks the
    // butterfly.
    wire[static_cast<std::size_t>(i)] =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(net.w)));
  }
  std::vector<int> live;
  for (int i = 0; i < tokens; ++i) live.push_back(i);
  std::vector<int> out(static_cast<std::size_t>(net.w), 0);
  while (!live.empty()) {
    const auto pick = static_cast<std::size_t>(rng.next_below(live.size()));
    const auto t = static_cast<std::size_t>(live[pick]);
    const auto l = static_cast<std::size_t>(layer[t]);
    for (std::size_t b = 0; b < net.layers[l].size(); ++b) {
      const auto [top, bottom] = net.layers[l][b];
      if (wire[t] == top || wire[t] == bottom) {
        wire[t] = toggle[l][b] ? bottom : top;
        toggle[l][b] = !toggle[l][b];
        break;
      }
    }
    if (++layer[t] == static_cast<int>(net.layers.size())) {
      ++out[static_cast<std::size_t>(wire[t])];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  for (int y = 0; y < net.w; ++y) {
    const int expected = tokens > y ? (tokens - y - 1) / net.w + 1 : 0;
    if (out[static_cast<std::size_t>(y)] != expected) return false;
  }
  return true;
}

}  // namespace toy

TEST(PeriodicNetwork, ButterflyBlocksWouldNotCount) {
  // Construction regression guard: replacing the DPRS reflection block
  // by a plain butterfly balances *sequential* streams (easy to verify)
  // but violates the step property under concurrent tokens. A seeded
  // random search over interleavings finds a violation quickly.
  Rng rng(20240707);
  const toy::Net butterfly = toy::butterfly_blocks(4, 2);
  bool violated = false;
  for (int trial = 0; trial < 500 && !violated; ++trial) {
    const int tokens = static_cast<int>(rng.next_in(2, 12));
    if (!toy::step_property_holds(butterfly, tokens, rng)) violated = true;
  }
  EXPECT_TRUE(violated)
      << "butterfly blocks unexpectedly satisfied the step property";
}

TEST(CountingNetwork, WidthTwoDegeneratesToOneBalancer) {
  Simulator sim = make_sim(8, 2);
  EXPECT_EQ(network_of(sim).num_balancers(), 1u);
  const RunResult result = run_sequential(sim, schedule_sequential(8));
  EXPECT_TRUE(result.values_ok);
}

}  // namespace
}  // namespace dcnt
