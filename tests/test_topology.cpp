#include "sim/topology.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/tree_counter.hpp"
#include "baselines/central.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

TEST(Topology, CompleteIsOneHop) {
  CompleteTopology topo(10);
  for (ProcessorId a = 0; a < 10; ++a) {
    for (ProcessorId b = 0; b < 10; ++b) {
      if (a == b) continue;
      EXPECT_EQ(topo.next_hop(a, b), b);
      EXPECT_EQ(topo.distance(a, b), 1);
    }
  }
}

TEST(Topology, RingTakesShorterDirection) {
  RingTopology topo(10);
  EXPECT_EQ(topo.next_hop(0, 3), 1);
  EXPECT_EQ(topo.next_hop(0, 8), 9);
  EXPECT_EQ(topo.distance(0, 3), 3);
  EXPECT_EQ(topo.distance(0, 8), 2);
  EXPECT_EQ(topo.distance(0, 5), 5);  // antipode
  EXPECT_EQ(topo.distance(2, 2), 0);
}

TEST(Topology, RingRoutesAlwaysTerminate) {
  for (const std::int64_t n : {2, 3, 7, 16, 31}) {
    RingTopology topo(n);
    for (ProcessorId a = 0; a < n; ++a) {
      for (ProcessorId b = 0; b < n; ++b) {
        EXPECT_LE(topo.distance(a, b), n / 2);
      }
    }
  }
}

TEST(Topology, TorusDimensionOrderRouting) {
  TorusTopology topo(16, 4);  // 4x4
  EXPECT_EQ(topo.rows(), 4);
  EXPECT_EQ(topo.cols(), 4);
  // (0,0) -> (2,2): fix column first (0->1->2), then row.
  EXPECT_EQ(topo.next_hop(0, 10), 1);
  EXPECT_EQ(topo.distance(0, 10), 4);
  // Wrap-around shortcut: (0,0) -> (0,3) is one hop backwards.
  EXPECT_EQ(topo.next_hop(0, 3), 3);
  EXPECT_EQ(topo.distance(0, 3), 1);
  // Max distance on 4x4 torus = 2 + 2.
  for (ProcessorId a = 0; a < 16; ++a) {
    for (ProcessorId b = 0; b < 16; ++b) {
      EXPECT_LE(topo.distance(a, b), 4);
    }
  }
}

TEST(Topology, TorusRaggedFactorization) {
  TorusTopology topo(12);  // auto cols: 3 -> 4x3
  EXPECT_EQ(topo.rows() * topo.cols(), 12);
  for (ProcessorId a = 0; a < 12; ++a) {
    for (ProcessorId b = 0; b < 12; ++b) {
      EXPECT_LE(topo.distance(a, b), topo.rows() / 2 + topo.cols() / 2 + 1);
    }
  }
}

TEST(Topology, HypercubeDistanceIsHamming) {
  HypercubeTopology topo(16);
  EXPECT_EQ(topo.dimensions(), 4);
  EXPECT_EQ(topo.distance(0b0000, 0b1111), 4);
  EXPECT_EQ(topo.distance(0b0101, 0b0100), 1);
  EXPECT_EQ(topo.distance(3, 3), 0);
  // next_hop flips the lowest differing bit.
  EXPECT_EQ(topo.next_hop(0b0000, 0b1010), 0b0010);
}

TEST(RoutedSim, CentralCounterOnRingCountsRouterHops) {
  const std::int64_t n = 8;
  SimConfig cfg;
  cfg.topology = std::make_shared<RingTopology>(n);
  Simulator sim(std::make_unique<CentralCounter>(n, 0), cfg);
  // Processor 4 (antipode) incs: request routes 4 hops, reply 4 hops.
  const OpId op = sim.begin_inc(4);
  sim.run_until_quiescent();
  EXPECT_EQ(*sim.result(op), 0);
  EXPECT_EQ(sim.metrics().total_messages(), 8);
  // Routers 1..3 (or 5..7) each relayed both directions.
  std::int64_t router_load = 0;
  for (ProcessorId p = 1; p <= 3; ++p) router_load += sim.metrics().load(p);
  std::int64_t router_load2 = 0;
  for (ProcessorId p = 5; p <= 7; ++p) router_load2 += sim.metrics().load(p);
  EXPECT_EQ(router_load + router_load2, 12);  // 3 relays x (recv+send) x 2 legs
}

TEST(RoutedSim, TreeCounterCorrectOnEveryTopology) {
  for (int variant = 0; variant < 3; ++variant) {
    TreeCounterParams params;
    params.k = 2;  // n = 8 = 2^3: hypercube-compatible
    SimConfig cfg;
    cfg.seed = 17;
    cfg.delay = DelayModel::uniform(1, 6);
    switch (variant) {
      case 0:
        cfg.topology = std::make_shared<RingTopology>(8);
        break;
      case 1:
        cfg.topology = std::make_shared<TorusTopology>(8, 4);
        break;
      default:
        cfg.topology = std::make_shared<HypercubeTopology>(8);
        break;
    }
    Simulator sim(std::make_unique<TreeCounter>(params), cfg);
    const RunResult result = run_sequential(sim, schedule_sequential(8));
    EXPECT_TRUE(result.values_ok) << cfg.topology->name();
    dynamic_cast<const TreeCounter&>(sim.counter()).deep_check();
  }
}

TEST(RoutedSim, SparseNetworksRaiseTheBottleneck) {
  // The §2 any-to-any assumption at work: same protocol, same workload,
  // strictly more load once routers count.
  TreeCounterParams params;
  params.k = 3;
  SimConfig direct;
  direct.seed = 4;
  Simulator flat(std::make_unique<TreeCounter>(params), direct);
  run_sequential(flat, schedule_sequential(81));

  SimConfig ringed = direct;
  ringed.topology = std::make_shared<RingTopology>(81);
  Simulator ring(std::make_unique<TreeCounter>(params), ringed);
  run_sequential(ring, schedule_sequential(81));

  EXPECT_GT(ring.metrics().total_messages(), flat.metrics().total_messages());
  EXPECT_GT(ring.metrics().max_load(), flat.metrics().max_load());
}

TEST(RoutedSim, TraceRecordsPhysicalHops) {
  SimConfig cfg;
  cfg.enable_trace = true;
  cfg.topology = std::make_shared<RingTopology>(8);
  Simulator sim(std::make_unique<CentralCounter>(8, 0), cfg);
  const OpId op = sim.begin_inc(2);
  sim.run_until_quiescent();
  ASSERT_TRUE(sim.result(op).has_value());
  // 2 -> 1 -> 0 (request), 0 -> 1 -> 2 (reply): four hop records.
  ASSERT_EQ(sim.trace().records().size(), 4u);
  const auto& recs = sim.trace().records();
  EXPECT_EQ(recs[0].src, 2);
  EXPECT_EQ(recs[0].dst, 1);
  EXPECT_EQ(recs[1].src, 1);
  EXPECT_EQ(recs[1].dst, 0);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].parent, recs[i - 1].id);
  }
}

TEST(RoutedSim, CloneSharesTopologySafely) {
  SimConfig cfg;
  cfg.topology = std::make_shared<RingTopology>(8);
  Simulator sim(std::make_unique<CentralCounter>(8, 0), cfg);
  run_sequential(sim, schedule_sequential(8));
  Simulator clone(sim);
  const OpId op = clone.begin_inc(3);
  clone.run_until_quiescent();
  EXPECT_EQ(*clone.result(op), 8);
}

}  // namespace
}  // namespace dcnt
