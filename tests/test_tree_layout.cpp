#include "core/tree_layout.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/bound.hpp"

namespace dcnt {
namespace {

class TreeLayoutTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeLayoutTest, SizesMatchPaper) {
  const TreeLayout layout(GetParam());
  const int k = GetParam();
  EXPECT_EQ(layout.n(), tree_size_for_k(k));
  std::int64_t inner = 0;
  for (int i = 0; i <= k; ++i) inner += ipow(k, i);
  EXPECT_EQ(layout.num_inner(), inner);
  EXPECT_EQ(layout.leaf_parent_level(), k);
}

TEST_P(TreeLayoutTest, ParentChildInverse) {
  const TreeLayout layout(GetParam());
  const int k = GetParam();
  for (NodeId node = 0; node < layout.num_inner(); ++node) {
    const int level = layout.level_of(node);
    if (level < k) {
      for (int c = 0; c < k; ++c) {
        const NodeId child = layout.child(node, c);
        EXPECT_EQ(layout.parent(child), node);
        EXPECT_EQ(layout.level_of(child), level + 1);
      }
    }
  }
  EXPECT_EQ(layout.parent(0), kNoNode);
}

TEST_P(TreeLayoutTest, LeafParentRoundTrip) {
  const TreeLayout layout(GetParam());
  const int k = GetParam();
  for (ProcessorId p = 0; p < layout.n(); ++p) {
    const NodeId up = layout.leaf_parent(p);
    EXPECT_TRUE(layout.children_are_leaves(up));
    bool found = false;
    for (int c = 0; c < k; ++c) {
      if (layout.leaf_child(up, c) == p) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_P(TreeLayoutTest, NodeNumberingRoundTrip) {
  const TreeLayout layout(GetParam());
  for (NodeId node = 0; node < layout.num_inner(); ++node) {
    const int level = layout.level_of(node);
    const std::int64_t j = layout.index_in_level(node);
    EXPECT_EQ(layout.node_at(level, j), node);
  }
}

TEST_P(TreeLayoutTest, PoolsOfNonRootNodesPartitionProcessors) {
  // The paper: pools on levels 1..k are disjoint and their union is all
  // n identifiers ("the largest identifier ... has the value k*k^k = n").
  const TreeLayout layout(GetParam());
  std::set<ProcessorId> covered;
  std::int64_t total = 0;
  for (NodeId node = 1; node < layout.num_inner(); ++node) {
    const ProcessorId begin = layout.pool_begin(node);
    const std::int64_t size = layout.pool_size(node);
    EXPECT_EQ(layout.initial_pid(node), begin);
    for (std::int64_t i = 0; i < size; ++i) {
      const auto pid = static_cast<ProcessorId>(begin + i);
      EXPECT_GE(pid, 0);
      EXPECT_LT(pid, layout.n());
      const bool inserted = covered.insert(pid).second;
      EXPECT_TRUE(inserted) << "pools overlap at pid " << pid;
    }
    total += size;
  }
  EXPECT_EQ(total, layout.k() * ipow(layout.k(), layout.k()));
  EXPECT_EQ(static_cast<std::int64_t>(covered.size()), layout.n());
}

TEST_P(TreeLayoutTest, RootPoolIsEverything) {
  const TreeLayout layout(GetParam());
  EXPECT_EQ(layout.pool_begin(0), 0);
  EXPECT_EQ(layout.pool_size(0), layout.n());
  EXPECT_EQ(layout.initial_pid(0), 0);
}

TEST_P(TreeLayoutTest, SuccessorWalksPoolAndWraps) {
  const TreeLayout layout(GetParam());
  for (NodeId node = 1; node < layout.num_inner(); ++node) {
    const ProcessorId begin = layout.pool_begin(node);
    const std::int64_t size = layout.pool_size(node);
    ProcessorId cur = begin;
    for (std::int64_t i = 0; i < size; ++i) {
      const ProcessorId next = layout.successor(node, cur);
      if (i + 1 < size) {
        EXPECT_EQ(next, cur + 1);
      } else {
        EXPECT_EQ(next, begin);  // wrap
      }
      cur = next;
    }
  }
}

TEST_P(TreeLayoutTest, PoolSizeMatchesPaperFormula) {
  const TreeLayout layout(GetParam());
  const int k = GetParam();
  for (NodeId node = 1; node < layout.num_inner(); ++node) {
    const int level = layout.level_of(node);
    EXPECT_EQ(layout.pool_size(node), ipow(k, k - level));
  }
}

INSTANTIATE_TEST_SUITE_P(AllK, TreeLayoutTest, ::testing::Values(2, 3, 4));

TEST(TreeLayout, PaperInitialIdExampleK2) {
  // k=2, n=8: level-1 nodes start at 0 and 2 (0-based; the paper's
  // 1-based formula gives 1 and 3), level-2 nodes at 4,5,6,7.
  const TreeLayout layout(2);
  EXPECT_EQ(layout.initial_pid(layout.node_at(1, 0)), 0);
  EXPECT_EQ(layout.initial_pid(layout.node_at(1, 1)), 2);
  for (std::int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(layout.initial_pid(layout.node_at(2, j)), 4 + j);
  }
}

}  // namespace
}  // namespace dcnt
