// The traffic engine (DESIGN.md §14): HDR histogram geometry and error
// bounds, recorder mode agreement, arrival-timeline determinism, and
// the multi-threaded record/merge paths the CI TSan job exercises.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "support/stats.hpp"
#include "traffic/histogram.hpp"
#include "traffic/recorder.hpp"
#include "traffic/shape.hpp"

namespace dcnt::traffic {
namespace {

// ---------------------------------------------------------------------
// LogHistogram bucket geometry.

// Values below kSubCount get a bucket each: exact recording, and the
// bucket [low, high] interval degenerates to the value itself.
TEST(LogHistogram, SmallValuesAreExact) {
  for (std::int64_t v = 0; v < LogHistogram::kSubCount; ++v) {
    const std::size_t idx = LogHistogram::bucket_index(v);
    EXPECT_EQ(idx, static_cast<std::size_t>(v));
    EXPECT_EQ(LogHistogram::bucket_low(idx), v);
    EXPECT_EQ(LogHistogram::bucket_high(idx), v);
    EXPECT_EQ(LogHistogram::bucket_mid(idx), v);
  }
}

// Every value maps to a bucket whose [low, high] interval contains it,
// and bucket boundaries are tight: low is the smallest value in the
// bucket, high the largest. Checked at the classic off-by-one spots —
// octave edges, sub-bucket edges, and their neighbours.
TEST(LogHistogram, BucketBoundariesAreExactAtOctaveEdges) {
  std::vector<std::int64_t> probes;
  for (int p = 7; p <= 42; ++p) {
    const std::int64_t edge = std::int64_t{1} << p;
    for (const std::int64_t v :
         {edge - 1, edge, edge + 1, edge + (edge >> 7),
          edge + (edge >> 7) - 1, (edge << 1) - 1}) {
      probes.push_back(v);
    }
  }
  for (const std::int64_t v : probes) {
    const std::size_t idx = LogHistogram::bucket_index(v);
    EXPECT_LE(LogHistogram::bucket_low(idx), v) << "v=" << v;
    EXPECT_GE(LogHistogram::bucket_high(idx), v) << "v=" << v;
    // Tightness: the value one below low / one above high lives in a
    // different bucket.
    EXPECT_NE(LogHistogram::bucket_index(LogHistogram::bucket_low(idx) - 1),
              idx)
        << "v=" << v;
    EXPECT_NE(LogHistogram::bucket_index(LogHistogram::bucket_high(idx) + 1),
              idx)
        << "v=" << v;
  }
}

// The buckets tile the value range with no gaps and no overlaps:
// consecutive buckets abut exactly ([low, high] then [high+1, ...]),
// and each bucket's endpoints map back to its own index.
TEST(LogHistogram, BucketIndexIsMonotoneAndGapFree) {
  const std::size_t top =
      LogHistogram::bucket_index(LogHistogram::kDefaultMaxValue);
  EXPECT_EQ(LogHistogram::bucket_low(0), 0);
  for (std::size_t idx = 0; idx <= top; ++idx) {
    EXPECT_EQ(LogHistogram::bucket_index(LogHistogram::bucket_low(idx)), idx);
    EXPECT_EQ(LogHistogram::bucket_index(LogHistogram::bucket_high(idx)), idx);
    if (idx > 0) {
      EXPECT_EQ(LogHistogram::bucket_low(idx),
                LogHistogram::bucket_high(idx - 1) + 1)
          << "gap before idx=" << idx;
    }
  }
}

// The relative width bound the header promises: every bucket above the
// exact range satisfies (high - low) / low <= 1/kSubCount < 1%.
TEST(LogHistogram, RelativeBucketWidthUnderOnePercent) {
  const std::size_t top =
      LogHistogram::bucket_index(LogHistogram::kDefaultMaxValue);
  for (std::size_t idx = LogHistogram::kSubCount; idx <= top; ++idx) {
    const double low = static_cast<double>(LogHistogram::bucket_low(idx));
    const double high = static_cast<double>(LogHistogram::bucket_high(idx));
    EXPECT_LE((high - low) / low, 1.0 / LogHistogram::kSubCount)
        << "idx=" << idx;
  }
}

// ---------------------------------------------------------------------
// LogHistogram recording, percentiles, merge, saturation.

// Histogram percentiles track exact nearest-rank percentiles within the
// bucket error bound on a log-uniform sample — the distribution shape
// that spreads mass across every octave.
TEST(LogHistogram, PercentilesWithinRelativeErrorOfExact) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> log_u(0.0, 30.0);  // 2^0..2^30 ns
  LogHistogram hist;
  Summary exact;
  for (int i = 0; i < 200'000; ++i) {
    const auto v = static_cast<std::int64_t>(std::exp2(log_u(rng)));
    hist.record(v);
    exact.add(v);
  }
  EXPECT_EQ(hist.count(), 200'000);
  for (const double q : {50.0, 90.0, 99.0, 99.9, 99.99}) {
    const double e = static_cast<double>(exact.percentile(q));
    const double h = static_cast<double>(hist.percentile(q));
    // Midpoint reporting keeps the error within half a bucket width:
    // 1/(2*kSubCount) of the value, padded slightly for rank rounding
    // at the extreme tail.
    EXPECT_NEAR(h, e, e / LogHistogram::kSubCount + 1.0) << "q=" << q;
  }
  EXPECT_EQ(hist.max(), exact.max());
  EXPECT_NEAR(hist.mean(), exact.mean(), 1e-6);
}

// Merge is bucket-wise addition: associative and commutative, so any
// fold order over per-worker histograms yields identical counts and
// percentiles.
TEST(LogHistogram, MergeIsAssociativeAndCommutative) {
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::int64_t> dist(1, 1 << 22);
  LogHistogram a, b, c;
  for (int i = 0; i < 5'000; ++i) a.record(dist(rng));
  for (int i = 0; i < 3'000; ++i) b.record(dist(rng));
  for (int i = 0; i < 7'000; ++i) c.record(dist(rng));

  // (a + b) + c
  LogHistogram abc(a);
  abc.merge(b);
  abc.merge(c);
  // c + (b + a)
  LogHistogram cba(c);
  LogHistogram ba(b);
  ba.merge(a);
  cba.merge(ba);

  EXPECT_EQ(abc.count(), 15'000);
  EXPECT_EQ(cba.count(), abc.count());
  EXPECT_EQ(cba.min(), abc.min());
  EXPECT_EQ(cba.max(), abc.max());
  EXPECT_DOUBLE_EQ(cba.mean(), abc.mean());
  for (const double q : {1.0, 25.0, 50.0, 75.0, 99.0, 99.9}) {
    EXPECT_EQ(cba.percentile(q), abc.percentile(q)) << "q=" << q;
  }
  for (std::size_t i = 0; i < abc.num_buckets(); ++i) {
    EXPECT_EQ(cba.bucket_count_at(i), abc.bucket_count_at(i)) << "i=" << i;
  }
}

// Values past max_value() saturate into the top bucket and count as
// overflow instead of growing (or missing) the array; the exact
// extremes still see the raw value, so saturation is observable.
TEST(LogHistogram, OverflowSaturatesIntoTopBucket) {
  const std::int64_t max_value = std::int64_t{1} << 20;
  LogHistogram hist(max_value);
  hist.record(100);
  hist.record(max_value);          // at the cap: not overflow
  hist.record(max_value * 16);     // past it: saturates
  hist.record(INT64_MAX);          // way past it: still one bucket
  EXPECT_EQ(hist.count(), 4);
  EXPECT_EQ(hist.overflow(), 2);
  EXPECT_EQ(hist.max(), INT64_MAX);  // extremes stay exact
  EXPECT_EQ(hist.min(), 100);
  // Everything saturated reports as the top bucket's midpoint — the
  // "at least this" answer — never above max_value's bucket.
  const std::size_t top = LogHistogram::bucket_index(max_value);
  EXPECT_EQ(hist.percentile(100), LogHistogram::bucket_mid(top));
  // A histogram with a different cap refuses to merge (different
  // geometry); same-cap merge carries overflow across.
  LogHistogram same(max_value);
  same.record(max_value * 2);
  same.merge(hist);
  EXPECT_EQ(same.overflow(), 3);
  EXPECT_EQ(same.count(), 5);
}

// Negative recordings clamp to zero (a completion racing a clock step
// must not underflow the first bucket).
TEST(LogHistogram, NegativeValuesClampToZero) {
  LogHistogram hist;
  hist.record(-5);
  EXPECT_EQ(hist.count(), 1);
  EXPECT_EQ(hist.min(), 0);
  EXPECT_EQ(hist.percentile(50), 0);
}

// Many threads hammering ONE histogram: totals must be exact (relaxed
// fetch_add never loses increments) and min/max exact. This is the
// test the CI TSan job reruns by name.
TEST(LogHistogram, ConcurrentRecordIntoSharedHistogram) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  LogHistogram hist;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hist, t] {
      std::mt19937_64 rng(100 + t);
      std::uniform_int_distribution<std::int64_t> dist(1, 1 << 24);
      for (int i = 0; i < kPerThread; ++i) hist.record(dist(rng));
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  EXPECT_GE(hist.min(), 1);
  EXPECT_LE(hist.max(), 1 << 24);
}

// Per-worker histograms merged after the fact agree exactly with one
// shared histogram fed the same samples — the merge path the cluster
// controller would use for per-node recorders.
TEST(LogHistogram, ConcurrentPerWorkerMergeMatchesShared) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;
  LogHistogram shared;
  std::vector<LogHistogram> locals(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&shared, &locals, t] {
      std::mt19937_64 rng(200 + t);
      std::uniform_int_distribution<std::int64_t> dist(1, 1 << 20);
      for (int i = 0; i < kPerThread; ++i) {
        const std::int64_t v = dist(rng);
        shared.record(v);
        locals[static_cast<std::size_t>(t)].record(v);
      }
    });
  }
  for (auto& w : workers) w.join();
  LogHistogram merged;
  for (const LogHistogram& l : locals) merged.merge(l);
  EXPECT_EQ(merged.count(), shared.count());
  EXPECT_EQ(merged.min(), shared.min());
  EXPECT_EQ(merged.max(), shared.max());
  for (std::size_t i = 0; i < merged.num_buckets(); ++i) {
    EXPECT_EQ(merged.bucket_count_at(i), shared.bucket_count_at(i));
  }
}

// ---------------------------------------------------------------------
// TailRecorder: exact vs HDR mode agreement, scheduled-time semantics.

// The same sample stream through both modes: counts, SLO accounting and
// max agree exactly; percentiles agree within the HDR bucket error.
TEST(TailRecorder, ExactAndHdrModesAgreeWithinBucketError) {
  constexpr std::size_t kOps = 4'096;
  const std::int64_t slo_ns = 1'000'000;  // 1 ms
  TailRecorder exact(kOps, slo_ns, /*exact_cap=*/kOps);      // exact mode
  TailRecorder hdr(kOps, slo_ns, /*exact_cap=*/kOps - 1);    // HDR mode
  ASSERT_TRUE(exact.exact_mode());
  ASSERT_FALSE(hdr.exact_mode());

  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> log_u(10.0, 24.0);  // 1µs..16ms
  for (std::size_t i = 0; i < kOps; ++i) {
    const auto v = static_cast<std::int64_t>(std::exp2(log_u(rng)));
    exact.record(v);
    hdr.record(v);
  }

  const TrafficStats e = exact.stats();
  const TrafficStats h = hdr.stats();
  EXPECT_TRUE(e.exact);
  EXPECT_FALSE(h.exact);
  EXPECT_EQ(e.count, static_cast<std::int64_t>(kOps));
  EXPECT_EQ(h.count, e.count);
  // SLO compares the raw latency before bucketing: exact in both modes.
  EXPECT_EQ(h.slo_ok, e.slo_ok);
  EXPECT_DOUBLE_EQ(h.slo_attainment, e.slo_attainment);
  EXPECT_EQ(h.hdr_overflow, 0);
  EXPECT_DOUBLE_EQ(h.max_us, e.max_us);  // max is tracked exactly
  EXPECT_NEAR(h.mean_us, e.mean_us, 1e-6);
  const double tol = 1.0 / LogHistogram::kSubCount;  // bucket width bound
  EXPECT_NEAR(h.p50_us, e.p50_us, e.p50_us * tol + 1e-3);
  EXPECT_NEAR(h.p99_us, e.p99_us, e.p99_us * tol + 1e-3);
  EXPECT_NEAR(h.p999_us, e.p999_us, e.p999_us * tol + 1e-3);
  EXPECT_NEAR(h.p9999_us, e.p9999_us, e.p9999_us * tol + 1e-3);
}

// Latency is measured from the SCHEDULED time handed to on_issue, not
// from any wall clock the recorder reads itself — the property that
// makes the open loop coordinated-omission-free. Deterministic check
// with synthetic timestamps.
TEST(TailRecorder, LatencyMeasuredFromScheduledTime) {
  TailRecorder rec(/*max_ops=*/4, /*slo_ns=*/1'000);
  ASSERT_TRUE(rec.exact_mode());
  // Op 0: scheduled at t=1000, completes at t=1500 -> 500 ns, in SLO.
  rec.on_issue(0, 1'000);
  rec.on_complete(0, 1'500);
  // Op 1: scheduled at t=2000 but the generator ran late and the system
  // finished it at t=5000 -> 3000 ns charged, SLO miss. A
  // send-time-based recorder would have hidden this.
  rec.on_issue(1, 2'000);
  rec.on_complete(1, 5'000);
  // Op 2: clock skew / immediate completion — clamps to 0, never
  // negative.
  rec.on_issue(2, 7'000);
  rec.on_complete(2, 6'999);
  const TrafficStats s = rec.stats();
  EXPECT_EQ(s.count, 3);
  EXPECT_EQ(s.slo_ok, 2);
  EXPECT_DOUBLE_EQ(s.max_us, 3.0);
  EXPECT_DOUBLE_EQ(s.slo_attainment, 2.0 / 3.0);
}

// Completions tallied from several threads surface in record_threads,
// and the totals stay exact — the multi-worker HDR tally path under
// TSan.
TEST(TailRecorder, ConcurrentCompletionsAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr std::size_t kPerThread = 10'000;
  TailRecorder rec(kThreads * kPerThread, /*slo_ns=*/0,
                   /*exact_cap=*/1'024);  // forces HDR mode
  ASSERT_FALSE(rec.exact_mode());
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec, t] {
      std::mt19937_64 rng(300 + t);
      std::uniform_int_distribution<std::int64_t> dist(100, 1 << 20);
      for (std::size_t i = 0; i < kPerThread; ++i) rec.record(dist(rng));
    });
  }
  for (auto& w : workers) w.join();
  const TrafficStats s = rec.stats();
  EXPECT_EQ(s.count, kThreads * static_cast<std::int64_t>(kPerThread));
  EXPECT_GE(s.record_threads, 1u);
  EXPECT_LE(s.record_threads, static_cast<std::size_t>(kThreads) + 1);
  EXPECT_EQ(s.slo_ok, s.count);  // no SLO configured: vacuously met
  EXPECT_DOUBLE_EQ(s.slo_attainment, 1.0);
}

// ---------------------------------------------------------------------
// RateShape / ArrivalTimeline determinism.

// The constant timeline is a closed form: arrival i at exactly
// i * 1e9/rate, twice over, no drift.
TEST(ArrivalTimeline, ConstantIsClosedFormAndDeterministic) {
  const RateShape shape = make_shape("constant", 1e6, 1.0, 0.5, 0.5);
  ArrivalTimeline a(shape), b(shape);
  for (std::int64_t i = 0; i < 10'000; ++i) {
    const std::int64_t got = a.next_ns();
    EXPECT_EQ(got, i * 1'000);  // 1e9 / 1e6 = 1000 ns apart
    EXPECT_EQ(b.next_ns(), got);
  }
}

// Modulated timelines start at 0 and are strictly increasing — a
// timeline that stalls or goes backwards would wedge the generator.
TEST(ArrivalTimeline, ModulatedShapesStrictlyIncrease) {
  for (const char* kind : {"burst", "diurnal"}) {
    RateShape shape = make_shape(kind, 100'000, 0.01, 1.0, 0.25);
    ArrivalTimeline timeline(shape);
    std::int64_t prev = timeline.next_ns();
    EXPECT_EQ(prev, 0) << kind;
    for (int i = 0; i < 20'000; ++i) {
      const std::int64_t t = timeline.next_ns();
      EXPECT_GT(t, prev) << kind << " at i=" << i;
      prev = t;
    }
  }
}

// Burst and diurnal modulation preserve the requested mean rate: over
// whole periods, the arrival count stays within a few percent of
// rate * duration (the rate floor at amplitude=1 adds a hair).
TEST(ArrivalTimeline, ModulatedShapesPreserveMeanRate) {
  const double rate = 200'000;
  const double duration_s = 0.1;  // 10 periods of 0.01 s
  const auto expect = static_cast<double>(rate * duration_s);
  for (const char* kind : {"burst", "diurnal"}) {
    const RateShape shape = make_shape(kind, rate, 0.01, 0.8, 0.5);
    const std::size_t n = count_arrivals(shape, duration_s, 1 << 22);
    EXPECT_NEAR(static_cast<double>(n), expect, expect * 0.05) << kind;
  }
}

// count_arrivals is the sizing function for duration-bounded runs: it
// must agree exactly with walking the timeline, and respect the cap.
TEST(ArrivalTimeline, CountArrivalsMatchesTimelineWalk) {
  const RateShape shape = make_shape("burst", 50'000, 0.02, 0.9, 0.3);
  const double duration_s = 0.05;
  const std::size_t n = count_arrivals(shape, duration_s, 1 << 20);
  ArrivalTimeline timeline(shape);
  std::size_t walked = 0;
  while (timeline.next_ns() < static_cast<std::int64_t>(duration_s * 1e9)) {
    ++walked;
  }
  EXPECT_EQ(n, walked);
  EXPECT_EQ(count_arrivals(shape, duration_s, 100), 100u);  // cap binds
}

// The burst high phase really is high: with duty 0.25 and amplitude 1,
// the first quarter-period runs at 4x the mean, so the arrival count in
// [0, duty*T) exceeds duty * (rate*T) by ~4x.
TEST(ArrivalTimeline, BurstConcentratesArrivalsInHighPhase) {
  const double rate = 100'000, period = 0.01, duty = 0.25;
  const RateShape shape = make_shape("burst", rate, period, 1.0, duty);
  const std::size_t in_high =
      count_arrivals(shape, period * duty, 1 << 20);  // first high phase
  const double uniform_share = rate * period * duty;  // what constant gives
  EXPECT_GT(static_cast<double>(in_high), 3.0 * uniform_share);
}

}  // namespace
}  // namespace dcnt::traffic
