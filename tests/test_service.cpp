// Service-fabric tests: MultiCounter correctness over simulator and
// threaded runtime, deterministic key->offset routing, and the LRU cold
// tier (evict to durable value, rehydrate on next touch) — including
// the determinism contract: same (seed, schedule) implies the identical
// evict/rehydrate sequence and final per-key values whether the runtime
// uses 1 worker or 4.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "baselines/central.hpp"
#include "harness/factory.hpp"
#include "harness/schedule.hpp"
#include "runtime/threaded_runtime.hpp"
#include "service/multi_counter.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

std::unique_ptr<service::MultiCounter> make_fabric(std::int64_t n,
                                                   std::uint64_t seed,
                                                   std::size_t capacity = 0) {
  service::MultiCounterOptions opt;
  opt.seed = seed;
  opt.capacity = capacity;
  return std::make_unique<service::MultiCounter>(
      std::make_unique<CentralCounter>(n), opt);
}

TEST(Service, OffsetsAreDeterministicInSeedAndKey) {
  const auto a = make_fabric(16, 7);
  const auto b = make_fabric(16, 7);
  const auto c = make_fabric(16, 8);
  bool any_differs_across_seeds = false;
  std::set<ProcessorId> distinct;
  for (KeyId key = 0; key < 64; ++key) {
    const ProcessorId off = a->offset_of(key);
    EXPECT_GE(off, 0);
    EXPECT_LT(off, 16);
    // Same (seed, key) on another instance (read: another node) must
    // agree, or inner argument words get mistranslated across nodes.
    EXPECT_EQ(off, b->offset_of(key));
    if (off != c->offset_of(key)) any_differs_across_seeds = true;
    distinct.insert(off);
  }
  EXPECT_TRUE(any_differs_across_seeds);
  // 64 keys over 16 slots: the mix must actually spread them.
  EXPECT_GT(distinct.size(), 8u);
}

TEST(Service, SimulatorSequentialPerKeyCounts) {
  Simulator sim(make_fabric(16, 1), SimConfig{});
  // Interleave three keys; each must count independently from 0.
  const std::vector<KeyId> schedule = {5, 9, 5, 5, 9, 123456, 5};
  std::vector<OpId> ops;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    ops.push_back(sim.begin_op(static_cast<ProcessorId>(i % 16),
                               {schedule[i]}));
    sim.run_until_quiescent();
  }
  const std::vector<Value> want = {0, 0, 1, 2, 1, 0, 3};
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ASSERT_TRUE(sim.result(ops[i]).has_value());
    EXPECT_EQ(*sim.result(ops[i]), want[i]) << "op " << i;
  }
  sim.counter().check_quiescent(schedule.size());
}

TEST(Service, BareIncCountsOnKeyZero) {
  Simulator sim(make_fabric(8, 1), SimConfig{});
  const OpId a = sim.begin_inc(1);
  sim.run_until_quiescent();
  const OpId b = sim.begin_op(2, {0});  // explicit key 0: same counter
  sim.run_until_quiescent();
  EXPECT_EQ(*sim.result(a), 0);
  EXPECT_EQ(*sim.result(b), 1);
}

// The fabric's core claim, measured: a key's instance is the unmodified
// inner protocol rotated by offset(key), so its per-key loads must be
// exactly a single-counter run's loads with every processor shifted by
// the offset.
TEST(Service, PerKeyLoadsMatchRotatedSingleCounter) {
  const std::int64_t n = 16;
  const std::uint64_t seed = 11;
  const std::vector<KeyId> keys = {3, 70000, 9};
  const std::size_t ops_per_key = 8;

  Simulator fabric_sim(make_fabric(n, seed), SimConfig{});
  const auto fabric_view = [&fabric_sim] {
    return dynamic_cast<const service::MultiCounter*>(&fabric_sim.counter());
  };
  for (std::size_t i = 0; i < ops_per_key; ++i) {
    for (const KeyId key : keys) {
      fabric_sim.begin_op(static_cast<ProcessorId>((3 * i) % n), {key});
      fabric_sim.run_until_quiescent();
    }
  }

  for (const KeyId key : keys) {
    const ProcessorId offset = fabric_view()->offset_of(key);
    // Replay this key's schedule on a plain central counter with the
    // origins mapped to inner coordinates.
    Simulator solo(std::make_unique<CentralCounter>(n), SimConfig{});
    for (std::size_t i = 0; i < ops_per_key; ++i) {
      const auto fabric_origin = static_cast<ProcessorId>((3 * i) % n);
      solo.begin_inc(static_cast<ProcessorId>((fabric_origin - offset + n) % n));
      solo.run_until_quiescent();
    }
    EXPECT_EQ(fabric_sim.metrics().key_max_load(key), solo.metrics().max_load())
        << "key " << key;
    EXPECT_EQ(fabric_sim.metrics().key_total_messages(key),
              solo.metrics().total_messages())
        << "key " << key;
    // And the per-key bottleneck sits at the rotated holder.
    for (ProcessorId p = 0; p < n; ++p) {
      const auto& slices = fabric_sim.metrics().key_loads().at(key);
      const auto it = slices.find(p);
      const std::int64_t fabric_load =
          it == slices.end() ? 0 : it->second.total();
      EXPECT_EQ(fabric_load,
                solo.metrics().load(static_cast<ProcessorId>((p - offset + n) % n)))
          << "key " << key << " fabric processor " << p;
    }
  }
}

TEST(Service, LruEvictsToDurableValueAndRehydrates) {
  Simulator sim(make_fabric(8, 1, /*capacity=*/2), SimConfig{});
  const auto fabric = [&sim] {
    return dynamic_cast<const service::MultiCounter*>(&sim.counter());
  };
  const auto touch = [&sim](KeyId key) {
    const OpId op = sim.begin_op(static_cast<ProcessorId>(key % 8), {key});
    sim.run_until_quiescent();
    return *sim.result(op);
  };

  EXPECT_EQ(touch(1), 0);  // 1 live
  EXPECT_EQ(touch(1), 1);
  EXPECT_EQ(touch(2), 0);  // 1, 2 live
  EXPECT_EQ(touch(3), 0);  // capacity pressure: evict LRU key 1
  // Key 1 rehydrates from its durable value — counting resumes at 2,
  // and key 2 (now LRU) is evicted to make room.
  EXPECT_EQ(touch(1), 2);

  using Log = service::KeyDirectory::LogRecord;
  const std::vector<Log> want = {
      {Log::Kind::kEvict, 1},
      {Log::Kind::kEvict, 2},
      {Log::Kind::kRehydrate, 1},
  };
  EXPECT_EQ(fabric()->lru_log(), want);

  const auto stats = fabric()->lru_stats();
  EXPECT_EQ(stats.evicts, 2);
  EXPECT_EQ(stats.rehydrates, 1);
  EXPECT_EQ(stats.misses, 4);  // 1, 2, 3 cold + 1 again after eviction
  // Hits count warm *dispatches* (every start and message delivery
  // passes through the directory), not ops: this sequential central
  // schedule touches instances 19 times, 4 of them cold.
  EXPECT_EQ(stats.hits, 15);

  // Durable + live values together reflect every completion; the
  // fabric's own audit cross-checks the same.
  const std::vector<std::pair<KeyId, Value>> values = {{1, 3}, {2, 1}, {3, 1}};
  EXPECT_EQ(fabric()->key_values(), values);
  sim.counter().check_quiescent(5);
}

// Determinism across worker counts: driven sequentially (quiesce
// between ops) with the same (seed, schedule), the directory must make
// the identical eviction decisions and land the identical final values
// whether the threaded runtime runs 1 shard or 4. active_shards is
// pinned so 4 means 4 even on a small host.
TEST(Service, LruLogDeterministicAcrossWorkerCounts) {
  const std::int64_t n = 16;
  const std::size_t ops = 96;
  const std::uint64_t seed = 13;
  const auto keys = make_keys("zipf", 0.99, /*keys=*/12,
                              static_cast<std::int64_t>(ops), seed);
  const auto initiators = make_initiators("roundrobin", 0.0, n,
                                          static_cast<std::int64_t>(ops), seed);

  struct Run {
    std::vector<service::KeyDirectory::LogRecord> log;
    std::vector<std::pair<KeyId, Value>> values;
    service::KeyDirectoryStats stats;
  };
  const auto drive = [&](std::size_t workers) {
    RuntimeConfig config;
    config.workers = workers;
    config.seed = seed;
    config.max_ops = ops;
    config.active_shards = workers;
    ThreadedRuntime rt(make_fabric(n, seed, /*capacity=*/4), config);
    for (std::size_t i = 0; i < ops; ++i) {
      rt.begin_op(initiators[i], {keys[i]});
      rt.wait_quiescent();
    }
    const auto* fabric =
        dynamic_cast<const service::MultiCounter*>(&rt.protocol());
    Run out;
    out.log = fabric->lru_log();
    out.values = fabric->key_values();
    out.stats = fabric->lru_stats();
    rt.protocol().check_quiescent(ops);
    return out;
  };

  const Run w1 = drive(1);
  const Run w4 = drive(4);
  EXPECT_FALSE(w1.log.empty());  // capacity 4 over 12 keys must evict
  EXPECT_EQ(w1.log, w4.log);
  EXPECT_EQ(w1.values, w4.values);
  EXPECT_EQ(w1.stats.evicts, w4.stats.evicts);
  EXPECT_EQ(w1.stats.rehydrates, w4.stats.rehydrates);
  EXPECT_EQ(w1.stats.misses, w4.stats.misses);
  EXPECT_EQ(w1.stats.hits, w4.stats.hits);

  // And the values are exactly the per-key op counts: key k finished
  // with value ops_k after handing out 0..ops_k-1.
  std::vector<std::int64_t> per_key(12, 0);
  for (const KeyId k : keys) ++per_key[static_cast<std::size_t>(k)];
  for (const auto& [key, value] : w1.values) {
    EXPECT_EQ(value, per_key[static_cast<std::size_t>(key)]) << key;
  }
}

// The fabric refuses concurrent use it cannot support: a capacity
// requires the inner protocol to collapse to a durable value.
TEST(Service, CapacityRequiresEvictableInner) {
  service::MultiCounterOptions opt;
  opt.seed = 1;
  opt.capacity = 2;
  EXPECT_DEATH(service::MultiCounter(make_counter(CounterKind::kTree, 9), opt),
               "evictable");
}

}  // namespace
}  // namespace dcnt
