#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "quorum/crumbling_wall.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/projective_plane.hpp"
#include "quorum/quorum_analysis.hpp"
#include "quorum/quorum_system.hpp"
#include "quorum/tree_quorum.hpp"

namespace dcnt {
namespace {

std::vector<std::unique_ptr<QuorumSystem>> all_systems(std::int64_t n) {
  std::vector<std::unique_ptr<QuorumSystem>> systems;
  systems.push_back(std::make_unique<MajorityQuorum>(n));
  systems.push_back(std::make_unique<GridQuorum>(n));
  systems.push_back(std::make_unique<TreeQuorum>(n));
  systems.push_back(CrumblingWall::triangle(n));
  systems.push_back(std::make_unique<SingletonQuorum>(n, 0));
  return systems;
}

class QuorumSystemTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(QuorumSystemTest, QuorumsAreValidSortedSubsets) {
  for (const auto& system : all_systems(GetParam())) {
    for (std::size_t i = 0; i < system->num_quorums(); ++i) {
      const auto q = system->quorum(i);
      ASSERT_FALSE(q.empty()) << system->name();
      for (std::size_t j = 0; j < q.size(); ++j) {
        EXPECT_GE(q[j], 0);
        EXPECT_LT(q[j], system->universe_size());
        if (j > 0) EXPECT_LT(q[j - 1], q[j]) << system->name();
      }
    }
  }
}

TEST_P(QuorumSystemTest, PairwiseIntersectionHolds) {
  // The precondition of the paper's Hot Spot Lemma, checked
  // exhaustively for every construction.
  Rng rng(1);
  for (const auto& system : all_systems(GetParam())) {
    const auto report =
        check_pairwise_intersection(*system, /*exhaustive_limit=*/256,
                                    /*samples=*/20000, rng);
    EXPECT_TRUE(report.all_intersect)
        << system->name() << " quorums " << report.bad_a << " and "
        << report.bad_b << " are disjoint";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuorumSystemTest,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 100));

TEST(MajorityQuorum, SizeIsFloorHalfPlusOne) {
  MajorityQuorum m(10);
  EXPECT_EQ(m.quorum_size(), 6);
  EXPECT_EQ(m.quorum(0).size(), 6u);
  MajorityQuorum odd(7);
  EXPECT_EQ(odd.quorum_size(), 4);
}

TEST(MajorityQuorum, RotationBalancesLoadPerfectly) {
  MajorityQuorum m(9);
  const auto load = rotation_load(m, 9);
  for (const auto hits : load.hits) {
    EXPECT_EQ(hits, m.quorum_size());
  }
}

TEST(GridQuorum, SizeIsOrderSqrtN) {
  GridQuorum g(100);
  EXPECT_EQ(g.rows(), 10);
  EXPECT_EQ(g.cols(), 10);
  // Full row (10) + 9 representatives = 19.
  EXPECT_EQ(g.quorum(0).size(), 19u);
}

TEST(GridQuorum, RaggedGridStillIntersects) {
  Rng rng(2);
  for (std::int64_t n : {5, 11, 13, 26, 50, 97}) {
    GridQuorum g(n);
    const auto report = check_pairwise_intersection(g, 256, 5000, rng);
    EXPECT_TRUE(report.all_intersect) << "n=" << n;
  }
}

TEST(GridQuorum, LoadBeatsmajority) {
  const std::int64_t n = 100;
  const auto grid_load = rotation_load(GridQuorum(n), n);
  const auto maj_load = rotation_load(MajorityQuorum(n), n);
  EXPECT_LT(grid_load.max_load, maj_load.max_load);
}

TEST(TreeQuorum, QuorumsAreSmall) {
  TreeQuorum t(127);  // full binary tree of depth 6
  double total = 0;
  for (std::size_t i = 0; i < t.num_quorums(); ++i) {
    total += static_cast<double>(t.quorum(i).size());
  }
  // Root+path quorums are ~depth-sized; the all-subtree splits larger.
  EXPECT_LT(total / static_cast<double>(t.num_quorums()), 64.0);
}

TEST(CrumblingWall, TriangleRowsSumToN) {
  const auto wall = CrumblingWall::triangle(20);
  EXPECT_EQ(wall->universe_size(), 20);
  EXPECT_GE(wall->num_rows(), 4u);
}

TEST(CrumblingWall, ExplicitWidthsValidated) {
  const CrumblingWall wall(6, {1, 2, 3});
  Rng rng(3);
  const auto report = check_pairwise_intersection(wall, 256, 1000, rng);
  EXPECT_TRUE(report.all_intersect);
}

TEST(CrumblingWall, UniformConstruction) {
  const auto wall = CrumblingWall::uniform(10, 3);
  EXPECT_EQ(wall->num_rows(), 4u);  // 3+3+3+1
  Rng rng(4);
  EXPECT_TRUE(check_pairwise_intersection(*wall, 256, 1000, rng).all_intersect);
}

TEST(SingletonQuorum, MaximallyUnbalanced) {
  SingletonQuorum s(10, 0);
  const auto load = rotation_load(s, 100);
  EXPECT_DOUBLE_EQ(load.max_load, 1.0);  // every op touches the holder
  EXPECT_EQ(load.hits[0], 100);
}

class ProjectivePlaneTest : public ::testing::TestWithParam<int> {};

TEST_P(ProjectivePlaneTest, AnyTwoLinesMeetInExactlyOnePoint) {
  const ProjectivePlaneQuorum fpp(GetParam());
  const int q = GetParam();
  EXPECT_EQ(fpp.universe_size(), static_cast<std::int64_t>(q) * q + q + 1);
  EXPECT_EQ(fpp.num_quorums(), static_cast<std::size_t>(fpp.universe_size()));
  for (std::size_t i = 0; i < fpp.num_quorums(); ++i) {
    const auto a = fpp.quorum(i);
    EXPECT_EQ(a.size(), static_cast<std::size_t>(q + 1));
    for (std::size_t j = i + 1; j < fpp.num_quorums(); ++j) {
      const auto b = fpp.quorum(j);
      int common = 0;
      std::size_t x = 0;
      std::size_t y = 0;
      while (x < a.size() && y < b.size()) {
        if (a[x] == b[y]) {
          ++common;
          ++x;
          ++y;
        } else if (a[x] < b[y]) {
          ++x;
        } else {
          ++y;
        }
      }
      EXPECT_EQ(common, 1) << "lines " << i << " and " << j;
    }
  }
}

TEST_P(ProjectivePlaneTest, EveryPointLiesOnExactlyQPlusOneLines) {
  const ProjectivePlaneQuorum fpp(GetParam());
  const int q = GetParam();
  std::vector<int> incidence(static_cast<std::size_t>(fpp.universe_size()), 0);
  for (std::size_t i = 0; i < fpp.num_quorums(); ++i) {
    for (const ProcessorId p : fpp.quorum(i)) {
      ++incidence[static_cast<std::size_t>(p)];
    }
  }
  for (const int count : incidence) {
    EXPECT_EQ(count, q + 1);  // duality: the plane is self-dual
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, ProjectivePlaneTest,
                         ::testing::Values(2, 3, 5, 7));

TEST(ProjectivePlane, PerfectLoadBalanceUnderFullRotation) {
  const ProjectivePlaneQuorum fpp(5);  // n = 31
  const auto load = rotation_load(fpp, static_cast<std::int64_t>(fpp.num_quorums()));
  // Self-duality: across all 31 lines, every point is hit exactly 6
  // times -> load = (q+1)/n ~ 1/sqrt(n), the theoretical optimum.
  for (const auto hits : load.hits) {
    EXPECT_EQ(hits, 6);
  }
  EXPECT_NEAR(load.max_load, 6.0 / 31.0, 1e-9);
}

TEST(ProjectivePlane, SupportedSizesAndOrderLookup) {
  const auto sizes = ProjectivePlaneQuorum::supported_sizes(150);
  EXPECT_EQ(sizes, (std::vector<std::int64_t>{7, 13, 31, 57, 133}));
  EXPECT_EQ(ProjectivePlaneQuorum::order_for(31), 5);
  EXPECT_EQ(ProjectivePlaneQuorum::order_for(56), 5);
  EXPECT_EQ(ProjectivePlaneQuorum::order_for(133), 11);
  EXPECT_EQ(ProjectivePlaneQuorum::order_for(6), 0);
}

TEST(ProjectivePlane, BeatsGridLoadAtMatchedSize) {
  const ProjectivePlaneQuorum fpp(7);  // n = 57
  const GridQuorum grid(57);
  const auto fpp_load = rotation_load(fpp, 570);
  const auto grid_load = rotation_load(grid, 570);
  EXPECT_LT(fpp_load.mean_quorum_size, grid_load.mean_quorum_size);
  EXPECT_LE(fpp_load.max_load, grid_load.max_load);
}

TEST(QuorumAnalysis, DetectsNonIntersectingFamily) {
  // A deliberately broken "system" to prove the checker can fail.
  class Broken final : public QuorumSystem {
   public:
    std::int64_t universe_size() const override { return 4; }
    std::size_t num_quorums() const override { return 2; }
    std::vector<ProcessorId> quorum(std::size_t index) const override {
      return index == 0 ? std::vector<ProcessorId>{0, 1}
                        : std::vector<ProcessorId>{2, 3};
    }
    std::string name() const override { return "broken"; }
    std::unique_ptr<QuorumSystem> clone() const override {
      return std::make_unique<Broken>(*this);
    }
  };
  Rng rng(5);
  const auto report = check_pairwise_intersection(Broken(), 256, 100, rng);
  EXPECT_FALSE(report.all_intersect);
}

TEST(QuorumAnalysis, RotationLoadAccounting) {
  MajorityQuorum m(4);  // quorum size 3
  const auto load = rotation_load(m, 4);
  EXPECT_DOUBLE_EQ(load.mean_quorum_size, 3.0);
  EXPECT_EQ(load.max_quorum_size, 3);
  std::int64_t total = 0;
  for (const auto h : load.hits) total += h;
  EXPECT_EQ(total, 12);
}

}  // namespace
}  // namespace dcnt
