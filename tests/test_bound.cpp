#include "core/bound.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dcnt {
namespace {

TEST(Bound, Ipow) {
  EXPECT_EQ(ipow(2, 0), 1);
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(3, 4), 81);
  EXPECT_EQ(ipow(10, 0), 1);
  EXPECT_EQ(ipow(0, 3), 0);
  EXPECT_EQ(ipow(1, 60), 1);
}

TEST(Bound, TreeSizes) {
  // n = k^(k+1): the paper's tree hosts exactly these processor counts.
  EXPECT_EQ(tree_size_for_k(1), 1);
  EXPECT_EQ(tree_size_for_k(2), 8);
  EXPECT_EQ(tree_size_for_k(3), 81);
  EXPECT_EQ(tree_size_for_k(4), 1024);
  EXPECT_EQ(tree_size_for_k(5), 15625);
  EXPECT_EQ(tree_size_for_k(6), 279936);
}

TEST(Bound, BottleneckKInvertsTreeSize) {
  for (int k = 2; k <= 8; ++k) {
    const double n = static_cast<double>(tree_size_for_k(k));
    EXPECT_NEAR(bottleneck_k(n), static_cast<double>(k), 1e-6);
  }
}

TEST(Bound, BottleneckKMonotone) {
  double prev = 0.0;
  for (double n = 2; n < 1e12; n *= 7) {
    const double k = bottleneck_k(n);
    EXPECT_GT(k, prev);
    prev = k;
  }
}

TEST(Bound, BottleneckKGrowsLikeLogOverLogLog) {
  // k = Theta(log n / log log n): check the ratio stays in a sane band.
  for (double n : {1e4, 1e6, 1e9, 1e12}) {
    const double k = bottleneck_k(n);
    const double expected = std::log(n) / std::log(std::log(n));
    EXPECT_GT(k / expected, 0.5);
    EXPECT_LT(k / expected, 2.5);
  }
}

TEST(Bound, FloorAndCeilK) {
  EXPECT_EQ(floor_k_for(8), 2);
  EXPECT_EQ(ceil_k_for(8), 2);
  EXPECT_EQ(floor_k_for(9), 2);
  EXPECT_EQ(ceil_k_for(9), 3);
  EXPECT_EQ(floor_k_for(80), 2);
  EXPECT_EQ(ceil_k_for(81), 3);
  EXPECT_EQ(floor_k_for(1024), 4);
  EXPECT_EQ(ceil_k_for(1025), 5);
  EXPECT_EQ(floor_k_for(1), 1);
  EXPECT_EQ(ceil_k_for(1), 1);
  EXPECT_EQ(ceil_k_for(2), 2);
}

TEST(Bound, FloorCeilBracketEveryN) {
  for (std::int64_t n = 1; n <= 20000; n += 7) {
    const int fk = floor_k_for(n);
    const int ck = ceil_k_for(n);
    EXPECT_LE(tree_size_for_k(fk), n);
    EXPECT_GE(tree_size_for_k(ck), n);
    EXPECT_LE(fk, ck);
    EXPECT_LE(ck - fk, 1);
  }
}

}  // namespace
}  // namespace dcnt
