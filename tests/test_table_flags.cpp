#include <gtest/gtest.h>

#include "support/flags.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace dcnt {
namespace {

TEST(Table, AlignedTextOutput) {
  Table t({"name", "value"});
  t.row().add("alpha").add(static_cast<std::int64_t>(42));
  t.row().add("b").add(static_cast<std::int64_t>(7));
  const std::string text = t.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvQuotesCommas) {
  Table t({"a", "b"});
  t.row().add("x,y").add("plain");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("a,b\n"), std::string::npos);
}

TEST(Table, DoubleFormattingTrimsZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(0.1239, 2), "0.12");
}

TEST(Flags, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--n=100", "--name", "tree", "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("n", 0), 100);
  EXPECT_EQ(flags.get_string("name", ""), "tree");
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_TRUE(flags.has("n"));
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("n", 7), 7);
  EXPECT_EQ(flags.get_string("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(flags.get_double("d", 2.5), 2.5);
  EXPECT_FALSE(flags.get_bool("b", false));
}

TEST(Flags, DoubleParsing) {
  const char* argv[] = {"prog", "--zipf=0.9"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.get_double("zipf", 0.0), 0.9);
}

// The shared --threads knob: explicit values pass through, absence (or
// 0) defers to resolve_thread_count's auto policy, and callers can
// rename the key.
TEST(Flags, ThreadsKnobResolvesExplicitAndAuto) {
  const char* argv[] = {"prog", "--threads=3"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(threads_from_flags(flags), 3u);

  const char* bare[] = {"prog"};
  Flags absent(1, const_cast<char**>(bare));
  EXPECT_EQ(threads_from_flags(absent), resolve_thread_count(0));
  EXPECT_GE(threads_from_flags(absent), 1u);

  const char* named[] = {"prog", "--workers=2"};
  Flags renamed(2, const_cast<char**>(named));
  EXPECT_EQ(threads_from_flags(renamed, "workers"), 2u);
}

}  // namespace
}  // namespace dcnt
