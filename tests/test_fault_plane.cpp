// Fault-injection plane: determinism, fault semantics, and the
// contract that an inert schedule changes nothing.
#include "faults/fault_plane.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/central.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

// Idempotent two-processor counter for fault-semantics tests: requests
// carry the op's id, the home dedups by it, and the origin completes
// only the first reply — so drops merely lose work and duplicates are
// harmless, letting each fault show up in the stats without tripping
// the simulator's double-completion check.
class DedupCounter final : public CounterProtocol {
 public:
  static constexpr std::int32_t kTagReq = 1;    // [op]
  static constexpr std::int32_t kTagReply = 2;  // [op, value]

  std::size_t num_processors() const override { return 2; }

  void start_inc(Context& ctx, ProcessorId origin, OpId op) override {
    Message m;
    m.src = origin;
    m.dst = 0;
    m.tag = kTagReq;
    m.args = {op};
    ctx.send(std::move(m));
  }

  void on_message(Context& ctx, const Message& msg) override {
    if (msg.tag == kTagReq) {
      const OpId op = msg.args.at(0);
      Value v;
      if (op < static_cast<OpId>(served_.size()) && served_[op] >= 0) {
        v = served_[op];  // duplicate request: replay, don't re-apply
      } else {
        v = value_++;
        if (op >= static_cast<OpId>(served_.size())) {
          served_.resize(static_cast<std::size_t>(op) + 1, -1);
        }
        served_[op] = v;
      }
      Message reply;
      reply.src = 0;
      reply.dst = msg.src;
      reply.tag = kTagReply;
      reply.op = msg.op;
      reply.args = {op, v};
      ctx.send(std::move(reply));
      return;
    }
    const OpId op = msg.args.at(0);
    if (op < static_cast<OpId>(completed_.size()) && completed_[op]) return;
    if (op >= static_cast<OpId>(completed_.size())) {
      completed_.resize(static_cast<std::size_t>(op) + 1, false);
    }
    completed_[op] = true;
    ctx.complete(msg.op, msg.args.at(1));
  }

  std::unique_ptr<CounterProtocol> clone_counter() const override {
    return std::make_unique<DedupCounter>(*this);
  }
  std::string name() const override { return "dedup"; }

 private:
  Value value_{0};
  std::vector<Value> served_;
  std::vector<bool> completed_;
};

// Completes via a local timer so crash-recover's "reboot restores the
// timer wheel" convention is observable end to end.
class TimerCounter final : public CounterProtocol {
 public:
  static constexpr std::int32_t kTagTimer = 1;  // local [op]

  std::size_t num_processors() const override { return 2; }
  void start_inc(Context& ctx, ProcessorId origin, OpId op) override {
    ctx.send_local(origin, kTagTimer, {op}, 5);
  }
  void on_message(Context& ctx, const Message& msg) override {
    ctx.complete(msg.args.at(0), value_++);
  }
  std::unique_ptr<CounterProtocol> clone_counter() const override {
    return std::make_unique<TimerCounter>(*this);
  }
  std::string name() const override { return "timer"; }

 private:
  Value value_{0};
};

TEST(FaultPlane, EmptyScheduleIsInactive) {
  FaultPlane plane(FaultSchedule{}, 42);
  EXPECT_FALSE(plane.active());
  FaultSchedule s;
  s.drop_probability = 0.1;
  EXPECT_TRUE(FaultPlane(s, 42).active());
}

TEST(FaultPlane, ScheduledIndexDropsAreSeedIndependent) {
  FaultSchedule s;
  s.drop_message_indices = {0, 3};
  for (const std::uint64_t seed : {1ull, 7ull, 999ull}) {
    FaultPlane plane(s, seed);
    EXPECT_EQ(plane.on_send(0, 1), FaultPlane::SendFault::kDrop);
    EXPECT_EQ(plane.on_send(0, 1), FaultPlane::SendFault::kDeliver);
    EXPECT_EQ(plane.on_send(1, 0), FaultPlane::SendFault::kDeliver);
    EXPECT_EQ(plane.on_send(1, 0), FaultPlane::SendFault::kDrop);
    EXPECT_EQ(plane.stats().scheduled_drops, 2);
    EXPECT_EQ(plane.hops_seen(), 4);
  }
}

TEST(FaultPlane, ChannelRuleOverridesGlobalProbability) {
  FaultSchedule s;
  s.drop_probability = 1.0;
  // First matching rule wins: (2 -> anyone) is lossless.
  s.channel_drops.push_back({2, kNoProcessor, 0.0});
  FaultPlane plane(s, 5);
  EXPECT_EQ(plane.on_send(2, 7), FaultPlane::SendFault::kDeliver);
  EXPECT_EQ(plane.on_send(7, 2), FaultPlane::SendFault::kDrop);
  EXPECT_EQ(plane.stats().random_drops, 1);
}

TEST(FaultPlane, CrashWindows) {
  FaultSchedule s;
  s.crashes.push_back({3, 10, -1});   // crash-stop at t=10
  s.crashes.push_back({5, 20, 30});   // dark during [20, 30)
  FaultPlane plane(s, 1);
  EXPECT_FALSE(plane.crashed_at(3, 9));
  EXPECT_TRUE(plane.crashed_at(3, 10));
  EXPECT_TRUE(plane.crashed_at(3, 1'000'000));
  EXPECT_EQ(plane.recovery_time(3, 50), -1);
  EXPECT_FALSE(plane.crashed_at(5, 19));
  EXPECT_TRUE(plane.crashed_at(5, 29));
  EXPECT_FALSE(plane.crashed_at(5, 30));
  EXPECT_EQ(plane.recovery_time(5, 25), 30);
  EXPECT_TRUE(plane.usable_origin(5, 35));
  EXPECT_FALSE(plane.usable_origin(3, 35));
}

TEST(FaultPlane, InertScheduleLeavesRunsBitIdentical) {
  // A schedule whose faults can never fire (a crash far past the end of
  // the run) must not perturb anything: the plane draws from its own
  // random stream, and zero-probability rules draw nothing at all.
  const auto run = [](const FaultSchedule& faults) {
    SimConfig cfg;
    cfg.seed = 1234;
    cfg.delay = DelayModel::uniform(1, 16);
    cfg.faults = faults;
    TreeServiceParams params;
    params.k = 2;
    Simulator sim(std::make_unique<TreeCounter>(params), cfg);
    std::vector<ProcessorId> order;
    for (ProcessorId p = 0; p < 8; ++p) order.push_back(p);
    return run_sequential(sim, order);
  };
  FaultSchedule inert;
  inert.crashes.push_back({0, 1'000'000'000, -1});
  const RunResult plain = run(FaultSchedule{});
  const RunResult gated = run(inert);
  EXPECT_TRUE(plain.values_ok);
  EXPECT_TRUE(gated.values_ok);
  EXPECT_EQ(plain.values, gated.values);
  EXPECT_EQ(plain.max_load, gated.max_load);
  EXPECT_EQ(plain.total_messages, gated.total_messages);
  EXPECT_EQ(plain.bottleneck, gated.bottleneck);
}

TEST(FaultPlane, InjectionsAreDeterministicAcrossRuns) {
  // Identical (schedule, seed) => bit-identical injections, loads and
  // delivery counts, run after run.
  const auto run = [](std::uint64_t seed) {
    SimConfig cfg;
    cfg.seed = seed;
    cfg.delay = DelayModel::uniform(1, 9);
    cfg.faults.drop_probability = 0.2;
    cfg.faults.duplicate_probability = 0.3;
    cfg.faults.crashes.push_back({1, 40, 80});  // crash-recover window
    Simulator sim(std::make_unique<DedupCounter>(), cfg);
    for (int i = 0; i < 30; ++i) sim.begin_inc(1);
    sim.run_until_quiescent();
    return sim;
  };
  const Simulator a = run(9);
  const Simulator b = run(9);
  const FaultStats& fa = a.fault_plane().stats();
  const FaultStats& fb = b.fault_plane().stats();
  EXPECT_EQ(fa.random_drops, fb.random_drops);
  EXPECT_EQ(fa.duplicates, fb.duplicates);
  EXPECT_EQ(fa.crash_drops, fb.crash_drops);
  EXPECT_EQ(a.fault_plane().hops_seen(), b.fault_plane().hops_seen());
  EXPECT_EQ(a.deliveries(), b.deliveries());
  EXPECT_EQ(a.ops_completed(), b.ops_completed());
  for (ProcessorId p = 0; p < 2; ++p) {
    EXPECT_EQ(a.metrics().load(p), b.metrics().load(p));
  }
  // ...and a different seed draws a different fault realization.
  const Simulator c = run(10);
  EXPECT_NE(a.fault_plane().stats().random_drops +
                a.fault_plane().stats().duplicates * 1000,
            c.fault_plane().stats().random_drops +
                c.fault_plane().stats().duplicates * 1000);
}

TEST(FaultPlane, DropsAreCountedAtSenderButNeverDelivered) {
  SimConfig cfg;
  cfg.faults.drop_probability = 1.0;
  Simulator sim(std::make_unique<DedupCounter>(), cfg);
  const OpId op = sim.begin_inc(1);
  sim.run_until_quiescent();
  EXPECT_FALSE(sim.result(op).has_value());
  EXPECT_EQ(sim.fault_plane().stats().random_drops, 1);
  EXPECT_EQ(sim.deliveries(), 0);
  // The hop was really sent: the sender paid for it.
  EXPECT_EQ(sim.metrics().load(1), 1);
  EXPECT_EQ(sim.metrics().load(0), 0);
}

TEST(FaultPlane, DuplicatesDeliverTwice) {
  SimConfig cfg;
  cfg.faults.duplicate_probability = 1.0;
  Simulator sim(std::make_unique<DedupCounter>(), cfg);
  const OpId op = sim.begin_inc(1);
  sim.run_until_quiescent();
  ASSERT_TRUE(sim.result(op).has_value());
  EXPECT_EQ(*sim.result(op), 0);
  // The request duplicates (2 deliveries); the idempotent server answers
  // each copy, and both replies duplicate too: 3 duplicated sends, 6
  // deliveries for 3 logical sends — yet the op completes exactly once.
  EXPECT_EQ(sim.fault_plane().stats().duplicates, 3);
  EXPECT_EQ(sim.deliveries(), 6);
}

TEST(FaultPlane, CrashStopSilencesAProcessor) {
  SimConfig cfg;
  cfg.faults.crashes.push_back({0, 0, -1});
  Simulator sim(std::make_unique<DedupCounter>(), cfg);
  const OpId op = sim.begin_inc(1);
  sim.run_until_quiescent();
  EXPECT_FALSE(sim.result(op).has_value());
  EXPECT_EQ(sim.fault_plane().stats().crash_drops, 1);
}

TEST(FaultPlane, CrashRecoverDefersLocalTimers) {
  SimConfig cfg;
  cfg.faults.crashes.push_back({1, 2, 50});  // dark during [2, 50)
  Simulator sim(std::make_unique<TimerCounter>(), cfg);
  const OpId op = sim.begin_inc(1);  // timer due at t=5, inside the window
  sim.run_until_quiescent();
  ASSERT_TRUE(sim.result(op).has_value());
  EXPECT_EQ(sim.op_responded_at(op), 50);  // fired at the reboot instant
  EXPECT_EQ(sim.fault_plane().stats().deferred_timers, 1);
}

TEST(FaultPlane, SnapshotRestoreReplaysIdentically) {
  // The plane's stream and counters are part of the simulator's value
  // semantics: diverge a scratch, restore, and the continuation must
  // match a fresh clone of the snapshot exactly.
  SimConfig cfg;
  cfg.seed = 21;
  cfg.delay = DelayModel::uniform(1, 7);
  cfg.faults.drop_probability = 0.25;
  cfg.faults.duplicate_probability = 0.25;
  Simulator sim(std::make_unique<DedupCounter>(), cfg);
  for (int i = 0; i < 10; ++i) sim.begin_inc(1);
  sim.run_until_quiescent();
  const Simulator snap = sim.snapshot();

  Simulator scratch(sim);
  for (int i = 0; i < 5; ++i) scratch.begin_inc(1);
  scratch.run_until_quiescent();
  scratch.restore(snap);
  Simulator fresh(snap);
  for (int i = 0; i < 8; ++i) {
    scratch.begin_inc(1);
    fresh.begin_inc(1);
  }
  scratch.run_until_quiescent();
  fresh.run_until_quiescent();
  EXPECT_EQ(scratch.deliveries(), fresh.deliveries());
  EXPECT_EQ(scratch.ops_completed(), fresh.ops_completed());
  const FaultStats& fs = scratch.fault_plane().stats();
  const FaultStats& ff = fresh.fault_plane().stats();
  EXPECT_EQ(fs.random_drops, ff.random_drops);
  EXPECT_EQ(fs.duplicates, ff.duplicates);
  EXPECT_EQ(scratch.fault_plane().hops_seen(), fresh.fault_plane().hops_seen());
  for (std::size_t op = 0; op < scratch.ops_started(); ++op) {
    EXPECT_EQ(scratch.result(static_cast<OpId>(op)),
              fresh.result(static_cast<OpId>(op)));
  }
}

TEST(FaultPlane, LocalAndSelfTrafficIsExempt) {
  // send_local and self-addressed sends bypass the plane entirely: with
  // certain drop, a timer-driven counter still completes.
  SimConfig cfg;
  cfg.faults.drop_probability = 1.0;
  Simulator sim(std::make_unique<TimerCounter>(), cfg);
  const OpId op = sim.begin_inc(1);
  sim.run_until_quiescent();
  ASSERT_TRUE(sim.result(op).has_value());
  EXPECT_EQ(sim.fault_plane().stats().random_drops, 0);
  EXPECT_EQ(sim.fault_plane().hops_seen(), 0);
}

TEST(FaultPlaneDeath, InvalidProbabilitiesAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FaultSchedule bad;
  bad.drop_probability = 1.5;
  EXPECT_DEATH({ FaultPlane plane(bad, 1); }, "probability");
  FaultSchedule neg;
  neg.duplicate_probability = -0.1;
  EXPECT_DEATH({ FaultPlane plane(neg, 1); }, "probability");
}

}  // namespace
}  // namespace dcnt
