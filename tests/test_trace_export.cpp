// Chrome trace-event export: the JSON must be structurally sound and
// must encode exactly the trace's records — one send slice per record,
// plus a recv slice and a flow-arrow pair for every delivered record.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "harness/factory.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_export.hpp"

namespace dcnt {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Minimal structural JSON check: every brace/bracket closes in order
/// and nothing trails the root object. The exporter emits no strings
/// containing braces, so scanning raw characters outside quotes is
/// sound.
void expect_balanced_json(const std::string& text) {
  std::string stack;
  bool in_string = false;
  for (const char c : text) {
    if (in_string) {
      in_string = c != '"';
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '{');
        stack.pop_back();
        break;
      case ']':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '[');
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_TRUE(stack.empty());
}

Simulator traced_run(CounterKind kind, std::int64_t min_n) {
  auto counter = make_counter(kind, min_n);
  SimConfig config;
  config.seed = 11;
  config.enable_trace = true;
  config.delay = DelayModel::uniform(1, 4);
  Simulator sim(std::move(counter), config);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  run_sequential(sim, schedule_sequential(n));
  return sim;
}

TEST(TraceExport, EmitsOneEventSetPerRecord) {
  Simulator sim = traced_run(CounterKind::kTree, 8);
  const std::size_t records = sim.trace().records().size();
  ASSERT_GT(records, 0u);

  const std::string json = to_chrome_trace(sim.trace());
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"processor 0\""), std::string::npos);

  // Nothing is dropped in a fault-free run: every record produced a
  // send slice, a recv slice, and a flow start/finish pair.
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"send\""), records);
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"recv\""), records);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"s\""), records);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"f\""), records);
  EXPECT_EQ(count_occurrences(json, "\"dropped\":true"), 0u);
}

TEST(TraceExport, CentralRoundTripShape) {
  Simulator sim = traced_run(CounterKind::kCentral, 8);
  const std::string json = to_chrome_trace(sim.trace());
  expect_balanced_json(json);
  // The central counter's trace is pure request/response: record count
  // is even and every arc touches the holder, processor 0.
  EXPECT_EQ(sim.trace().records().size() % 2, 0u);
  EXPECT_NE(json.find("\"name\":\"processor 0\""), std::string::npos);
}

TEST(TraceExport, EmptyTraceIsValid) {
  Trace trace(true);
  const std::string json = to_chrome_trace(trace);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 0u);
}

}  // namespace
}  // namespace dcnt
