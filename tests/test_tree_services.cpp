// The §2 sibling data structures on the §4 machinery: the flip bit and
// the priority queue. The paper's point — the bottleneck argument is
// about *predecessor-dependent* objects, not counters specifically —
// becomes: same tree, same lemmas, same O(k) load, different root state.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "analysis/audit.hpp"
#include "core/tree_bit.hpp"
#include "core/tree_counter.hpp"
#include "core/tree_pq.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

TEST(TreeFlipBit, SequentialFlipsReturnAlternatingBits) {
  TreeServiceParams params;
  params.k = 2;
  SimConfig cfg;
  cfg.seed = 3;
  cfg.delay = DelayModel::uniform(1, 9);
  Simulator sim(std::make_unique<TreeFlipBit>(params), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  for (ProcessorId p = 0; p < n; ++p) {
    const OpId op = sim.begin_inc(p);
    sim.run_until_quiescent();
    ASSERT_TRUE(sim.result(op).has_value());
    EXPECT_EQ(*sim.result(op), static_cast<Value>(p % 2));
    sim.counter().check_quiescent(sim.ops_completed());
  }
  const auto& bit = dynamic_cast<const TreeFlipBit&>(sim.counter());
  EXPECT_EQ(bit.bit(), n % 2 == 1);
  bit.deep_check();
}

TEST(TreeFlipBit, InheritsTheBottleneckBound) {
  TreeServiceParams params;
  params.k = 3;
  Simulator sim(std::make_unique<TreeFlipBit>(params), {});
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  for (ProcessorId p = 0; p < n; ++p) {
    sim.begin_inc(p);
    sim.run_until_quiescent();
  }
  const TreeAuditReport report = audit_tree_run(sim);
  EXPECT_TRUE(report.retirement_lemma_ok);
  EXPECT_TRUE(report.pools_ok);
  EXPECT_LE(report.max_load, 30 * params.k);
}

TEST(TreeFlipBit, RetirementShipsTheBitCorrectly) {
  // Many flips force root retirements; the bit must survive handovers.
  TreeServiceParams params;
  params.k = 2;
  SimConfig cfg;
  cfg.seed = 11;
  cfg.delay = DelayModel::uniform(1, 6);
  Simulator sim(std::make_unique<TreeFlipBit>(params), cfg);
  for (int i = 0; i < 100; ++i) {
    const OpId op = sim.begin_inc(static_cast<ProcessorId>(i % 8));
    sim.run_until_quiescent();
    EXPECT_EQ(*sim.result(op), static_cast<Value>(i % 2));
  }
  const auto& bit = dynamic_cast<const TreeFlipBit&>(sim.counter());
  EXPECT_GT(bit.stats().retirements_total, 0);
}

TEST(TreePriorityQueue, InsertThenExtractIsSorted) {
  TreeServiceParams params;
  params.k = 2;
  SimConfig cfg;
  cfg.seed = 5;
  cfg.delay = DelayModel::uniform(1, 7);
  Simulator sim(std::make_unique<TreePriorityQueue>(params), cfg);
  const std::vector<std::int64_t> keys = {42, 7, 99, 7, -3, 18, 0, 56};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const OpId op = sim.begin_op(static_cast<ProcessorId>(i),
                                 {TreePriorityQueue::kOpInsert, keys[i]});
    sim.run_until_quiescent();
    EXPECT_EQ(*sim.result(op), keys[i]);  // insert echoes the key
  }
  std::vector<std::int64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const OpId op = sim.begin_op(static_cast<ProcessorId>(i),
                                 {TreePriorityQueue::kOpExtractMin});
    sim.run_until_quiescent();
    EXPECT_EQ(*sim.result(op), sorted[i]);
  }
  const auto& pq = dynamic_cast<const TreePriorityQueue&>(sim.counter());
  EXPECT_EQ(pq.size(), 0u);
}

TEST(TreePriorityQueue, ExtractFromEmptyReturnsSentinel) {
  TreeServiceParams params;
  params.k = 2;
  Simulator sim(std::make_unique<TreePriorityQueue>(params), {});
  const OpId op = sim.begin_op(3, {TreePriorityQueue::kOpExtractMin});
  sim.run_until_quiescent();
  EXPECT_EQ(*sim.result(op), TreePriorityQueue::kEmptyQueue);
}

TEST(TreePriorityQueue, InterleavedWorkload) {
  TreeServiceParams params;
  params.k = 2;
  SimConfig cfg;
  cfg.seed = 21;
  cfg.delay = DelayModel::uniform(1, 5);
  Simulator sim(std::make_unique<TreePriorityQueue>(params), cfg);
  // Insert i*2 for i in 0..7, extracting after every second insert; a
  // min-extract always returns the smallest key still inside.
  std::vector<std::int64_t> inside;
  Rng rng(9);
  for (int i = 0; i < 40; ++i) {
    const auto origin = static_cast<ProcessorId>(i % 8);
    if (i % 3 != 2) {
      const auto key = static_cast<std::int64_t>(rng.next_below(1000));
      sim.begin_op(origin, {TreePriorityQueue::kOpInsert, key});
      sim.run_until_quiescent();
      inside.push_back(key);
    } else {
      const OpId op = sim.begin_op(origin, {TreePriorityQueue::kOpExtractMin});
      sim.run_until_quiescent();
      const auto it = std::min_element(inside.begin(), inside.end());
      ASSERT_NE(it, inside.end());
      EXPECT_EQ(*sim.result(op), *it);
      inside.erase(it);
    }
  }
  const auto& pq = dynamic_cast<const TreePriorityQueue&>(sim.counter());
  EXPECT_EQ(pq.size(), inside.size());
  pq.deep_check();
}

TEST(TreePriorityQueue, HandoverWordsGrowWithQueueUnlikeCounter) {
  // The measured caveat: the PQ's root handover ships the heap, so the
  // paper's O(log n)-bit message property does not extend to it.
  TreeServiceParams params;
  params.k = 2;
  SimConfig cfg;
  cfg.seed = 2;
  Simulator pq_sim(std::make_unique<TreePriorityQueue>(params), cfg);
  for (int i = 0; i < 200; ++i) {
    pq_sim.begin_op(static_cast<ProcessorId>(i % 8),
                    {TreePriorityQueue::kOpInsert, 1000 - i});
    pq_sim.run_until_quiescent();
  }
  const auto& pq = dynamic_cast<const TreePriorityQueue&>(pq_sim.counter());
  ASSERT_GT(pq.stats().retirements_total, 0);
  EXPECT_GT(pq.stats().max_handover_words, 50);

  Simulator cnt_sim(std::make_unique<TreeCounter>(params), cfg);
  for (int i = 0; i < 200; ++i) {
    cnt_sim.begin_inc(static_cast<ProcessorId>(i % 8));
    cnt_sim.run_until_quiescent();
  }
  const auto& cnt = dynamic_cast<const TreeCounter&>(cnt_sim.counter());
  EXPECT_LE(cnt.stats().max_handover_words, 4);  // node, parent, value (+tag)

  // The same divergence in the runtime's own accounting: the largest
  // single message the PQ run ever sent is an order of magnitude beyond
  // the counter's (whose messages all stay O(1) words = O(log n) bits).
  EXPECT_GT(pq_sim.metrics().max_message_words(),
            10 * cnt_sim.metrics().max_message_words());
  EXPECT_LE(cnt_sim.metrics().max_message_words(), 5);
}

TEST(TreePriorityQueue, PoolWrapKeepsHeapIntact) {
  // 200+ ops on n=8 wrap pools repeatedly; the heap must survive
  // wrap-around handovers too.
  TreeServiceParams params;
  params.k = 2;
  SimConfig cfg;
  cfg.seed = 8;
  cfg.delay = DelayModel::uniform(1, 4);
  Simulator sim(std::make_unique<TreePriorityQueue>(params), cfg);
  for (int i = 0; i < 128; ++i) {
    sim.begin_op(static_cast<ProcessorId>(i % 8),
                 {TreePriorityQueue::kOpInsert, i});
    sim.run_until_quiescent();
  }
  for (int i = 0; i < 128; ++i) {
    const OpId op = sim.begin_op(static_cast<ProcessorId>(i % 8),
                                 {TreePriorityQueue::kOpExtractMin});
    sim.run_until_quiescent();
    EXPECT_EQ(*sim.result(op), i);
  }
}

}  // namespace
}  // namespace dcnt
