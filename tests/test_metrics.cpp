#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace dcnt {
namespace {

TEST(Metrics, CountsSendsAndReceives) {
  Metrics m(4);
  m.on_send(0, 0, 2);
  m.on_receive(1, 1);
  m.on_send(1, 0, 3);
  m.on_receive(2, 1);
  EXPECT_EQ(m.sent(0), 1);
  EXPECT_EQ(m.received(0), 0);
  EXPECT_EQ(m.load(0), 1);
  EXPECT_EQ(m.load(1), 2);
  EXPECT_EQ(m.load(2), 1);
  EXPECT_EQ(m.load(3), 0);
  EXPECT_EQ(m.total_messages(), 2);
  EXPECT_EQ(m.total_words(), 5);
}

TEST(Metrics, BottleneckIsArgmax) {
  Metrics m(3);
  m.on_send(2, kNoOp, 1);
  m.on_send(2, kNoOp, 1);
  m.on_send(1, kNoOp, 1);
  EXPECT_EQ(m.max_load(), 2);
  EXPECT_EQ(m.bottleneck(), 2);
}

TEST(Metrics, PerOpAttribution) {
  Metrics m(2);
  m.on_send(0, 0, 1);
  m.on_send(0, 0, 1);
  m.on_send(1, 2, 1);  // op ids may skip (op 1 sent nothing)
  ASSERT_EQ(m.per_op_messages().size(), 3u);
  EXPECT_EQ(m.per_op_messages()[0], 2);
  EXPECT_EQ(m.per_op_messages()[1], 0);
  EXPECT_EQ(m.per_op_messages()[2], 1);
}

TEST(Metrics, NoOpTrafficNotAttributed) {
  Metrics m(2);
  m.on_send(0, kNoOp, 1);
  EXPECT_TRUE(m.per_op_messages().empty());
  EXPECT_EQ(m.total_messages(), 1);
}

TEST(Metrics, LoadSummaryMatchesLoads) {
  Metrics m(3);
  m.on_send(0, kNoOp, 1);
  m.on_receive(1, 1);
  m.on_receive(1, 1);
  const Summary s = m.load_summary();
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.max(), 2);
  EXPECT_EQ(s.sum(), 3);
}

TEST(Metrics, WordLoadsTrackPayloadPerProcessor) {
  Metrics m(3);
  m.on_send(0, 0, 5);     // 0 sends 5 words
  m.on_receive(1, 5);     // 1 receives them
  m.on_send(1, 0, 2);
  m.on_receive(2, 2);
  EXPECT_EQ(m.word_load(0), 5);
  EXPECT_EQ(m.word_load(1), 7);
  EXPECT_EQ(m.word_load(2), 2);
  EXPECT_EQ(m.max_word_load(), 7);
  EXPECT_EQ(m.max_message_words(), 5);
}

TEST(Metrics, ResetClearsEverything) {
  Metrics m(2);
  m.on_send(0, 0, 1);
  m.on_receive(1, 1);
  m.reset();
  EXPECT_EQ(m.total_messages(), 0);
  EXPECT_EQ(m.load(0), 0);
  EXPECT_EQ(m.load(1), 0);
  EXPECT_TRUE(m.per_op_messages().empty());
}

TEST(Metrics, KeyedSendsTrackPerKeySlices) {
  Metrics m(4);
  m.on_send(0, 0, 2, /*key=*/7);
  m.on_receive(1, 2, /*key=*/7);
  m.on_send(0, 1, 1, /*key=*/9);
  m.on_send(2, 2, 1);  // unkeyed: global only
  EXPECT_EQ(m.key_max_load(7), 1);
  EXPECT_EQ(m.key_total_messages(7), 1);
  EXPECT_EQ(m.key_total_messages(9), 1);
  EXPECT_EQ(m.key_max_load(12345), 0);  // untouched key
  // Global counters see keyed and unkeyed traffic alike.
  EXPECT_EQ(m.total_messages(), 3);
  EXPECT_EQ(m.load(0), 2);
  // Only touched (key, processor) pairs materialize.
  ASSERT_EQ(m.key_loads().size(), 2u);
  EXPECT_EQ(m.key_loads().at(7).at(0).sent, 1);
  EXPECT_EQ(m.key_loads().at(7).at(1).received, 1);
}

TEST(Metrics, KeyedMergeIsAssociative) {
  // The threaded runtime merges per-shard Metrics at quiescence and the
  // cluster controller merges per-node reports; neither controls the
  // merge order, so the keyed maps must accumulate associatively:
  // (A + B) + C == A + (B + C), including keys absent from some shards.
  const auto make = [](int which) {
    Metrics m(4);
    if (which == 0) {
      m.on_send(0, 0, 1, 5);
      m.on_receive(1, 1, 5);
      m.on_send(2, 1, 1, 6);
    } else if (which == 1) {
      m.on_send(1, 2, 1, 5);
      m.on_send(3, 3, 2, 8);
    } else {
      m.on_receive(0, 1, 6);
      m.on_receive(3, 2, 8);
      m.on_send(1, 4, 1, 5);
    }
    return m;
  };
  Metrics left = make(0);
  left.merge_from(make(1));
  left.merge_from(make(2));

  Metrics bc = make(1);
  bc.merge_from(make(2));
  Metrics right = make(0);
  right.merge_from(bc);

  for (const KeyId key : {5, 6, 8, 99}) {
    EXPECT_EQ(left.key_max_load(key), right.key_max_load(key)) << key;
    EXPECT_EQ(left.key_total_messages(key), right.key_total_messages(key))
        << key;
  }
  ASSERT_EQ(left.key_loads().size(), right.key_loads().size());
  for (const auto& [key, per_pid] : left.key_loads()) {
    const auto& other = right.key_loads().at(key);
    ASSERT_EQ(per_pid.size(), other.size()) << key;
    for (const auto& [pid, slice] : per_pid) {
      EXPECT_EQ(slice.sent, other.at(pid).sent) << key << "/" << pid;
      EXPECT_EQ(slice.received, other.at(pid).received) << key << "/" << pid;
    }
  }
  EXPECT_EQ(left.total_messages(), right.total_messages());
  EXPECT_EQ(left.max_load(), right.max_load());
}

TEST(Metrics, ResetClearsKeyedSlices) {
  Metrics m(2);
  m.on_send(0, 0, 1, 3);
  m.reset();
  EXPECT_EQ(m.key_max_load(3), 0);
  // Post-reset keyed traffic is absolute, not baseline-relative: the
  // cluster's metrics reset zeroes the slices in place so per-key
  // reports need no baseline subtraction.
  m.on_send(0, 1, 1, 3);
  EXPECT_EQ(m.key_total_messages(3), 1);
}

}  // namespace
}  // namespace dcnt
