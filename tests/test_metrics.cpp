#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace dcnt {
namespace {

TEST(Metrics, CountsSendsAndReceives) {
  Metrics m(4);
  m.on_send(0, 0, 2);
  m.on_receive(1, 1);
  m.on_send(1, 0, 3);
  m.on_receive(2, 1);
  EXPECT_EQ(m.sent(0), 1);
  EXPECT_EQ(m.received(0), 0);
  EXPECT_EQ(m.load(0), 1);
  EXPECT_EQ(m.load(1), 2);
  EXPECT_EQ(m.load(2), 1);
  EXPECT_EQ(m.load(3), 0);
  EXPECT_EQ(m.total_messages(), 2);
  EXPECT_EQ(m.total_words(), 5);
}

TEST(Metrics, BottleneckIsArgmax) {
  Metrics m(3);
  m.on_send(2, kNoOp, 1);
  m.on_send(2, kNoOp, 1);
  m.on_send(1, kNoOp, 1);
  EXPECT_EQ(m.max_load(), 2);
  EXPECT_EQ(m.bottleneck(), 2);
}

TEST(Metrics, PerOpAttribution) {
  Metrics m(2);
  m.on_send(0, 0, 1);
  m.on_send(0, 0, 1);
  m.on_send(1, 2, 1);  // op ids may skip (op 1 sent nothing)
  ASSERT_EQ(m.per_op_messages().size(), 3u);
  EXPECT_EQ(m.per_op_messages()[0], 2);
  EXPECT_EQ(m.per_op_messages()[1], 0);
  EXPECT_EQ(m.per_op_messages()[2], 1);
}

TEST(Metrics, NoOpTrafficNotAttributed) {
  Metrics m(2);
  m.on_send(0, kNoOp, 1);
  EXPECT_TRUE(m.per_op_messages().empty());
  EXPECT_EQ(m.total_messages(), 1);
}

TEST(Metrics, LoadSummaryMatchesLoads) {
  Metrics m(3);
  m.on_send(0, kNoOp, 1);
  m.on_receive(1, 1);
  m.on_receive(1, 1);
  const Summary s = m.load_summary();
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.max(), 2);
  EXPECT_EQ(s.sum(), 3);
}

TEST(Metrics, WordLoadsTrackPayloadPerProcessor) {
  Metrics m(3);
  m.on_send(0, 0, 5);     // 0 sends 5 words
  m.on_receive(1, 5);     // 1 receives them
  m.on_send(1, 0, 2);
  m.on_receive(2, 2);
  EXPECT_EQ(m.word_load(0), 5);
  EXPECT_EQ(m.word_load(1), 7);
  EXPECT_EQ(m.word_load(2), 2);
  EXPECT_EQ(m.max_word_load(), 7);
  EXPECT_EQ(m.max_message_words(), 5);
}

TEST(Metrics, ResetClearsEverything) {
  Metrics m(2);
  m.on_send(0, 0, 1);
  m.on_receive(1, 1);
  m.reset();
  EXPECT_EQ(m.total_messages(), 0);
  EXPECT_EQ(m.load(0), 0);
  EXPECT_EQ(m.load(1), 0);
  EXPECT_TRUE(m.per_op_messages().empty());
}

}  // namespace
}  // namespace dcnt
