// Latency reports and the per-level tree profile.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/latency.hpp"
#include "analysis/tree_profile.hpp"
#include "baselines/central.hpp"
#include "core/bound.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

TEST(Latency, FixedDelayCentralRoundTrip) {
  SimConfig cfg;
  cfg.delay = DelayModel::fixed_delay(3);
  Simulator sim(std::make_unique<CentralCounter>(8, 0), cfg);
  run_sequential(sim, schedule_reverse(8));  // holder goes last
  const LatencyReport report = latency_report(sim);
  EXPECT_EQ(report.ops, 8);
  // Remote incs: request 3 + reply 3 = 6 ticks; the holder's own is 0.
  EXPECT_EQ(report.max, 6);
  EXPECT_EQ(report.p50, 6);
  EXPECT_NEAR(report.mean, 6.0 * 7 / 8, 1e-9);
}

TEST(Latency, TreeDeeperThanCentral) {
  SimConfig cfg;
  cfg.delay = DelayModel::fixed_delay(1);
  TreeCounterParams params;
  params.k = 3;
  Simulator tree(std::make_unique<TreeCounter>(params), cfg);
  run_sequential(tree, schedule_sequential(81));
  Simulator central(std::make_unique<CentralCounter>(81), cfg);
  run_sequential(central, schedule_sequential(81));
  // Theta(k) hops vs one round trip — the price of spreading load.
  EXPECT_GT(latency_report(tree).mean, latency_report(central).mean);
}

TEST(Latency, SummaryMatchesReport) {
  Simulator sim(std::make_unique<CentralCounter>(4), {});
  run_sequential(sim, schedule_sequential(4));
  const Summary summary = latency_summary(sim);
  const LatencyReport report = latency_report(sim);
  EXPECT_EQ(static_cast<std::int64_t>(summary.count()), report.ops);
  EXPECT_EQ(summary.max(), report.max);
}

TEST(TreeProfile, RowsAreInternallyConsistent) {
  TreeCounterParams params;
  params.k = 3;
  Simulator sim(std::make_unique<TreeCounter>(params), {});
  run_sequential(sim, schedule_sequential(81));
  const auto profile = tree_level_profile(sim);
  ASSERT_EQ(profile.size(), 4u);  // levels 0..k
  std::int64_t total_retirements = 0;
  for (const auto& row : profile) {
    EXPECT_EQ(row.nodes, ipow(3, row.level));
    EXPECT_LE(row.max_retirements_per_node, row.pool_budget_per_node);
    // Incumbents: the initial ones plus one per retirement, minus any
    // processor serving twice (none without pool wraps).
    EXPECT_EQ(row.distinct_incumbents, row.nodes + row.retirements);
    EXPECT_GE(row.max_incumbent_load, 1);
    total_retirements += row.retirements;
  }
  const auto& tc = dynamic_cast<const TreeCounter&>(sim.counter());
  EXPECT_EQ(total_retirements, tc.stats().retirements_total);
}

TEST(TreeProfile, LeafParentLevelNeverRetiresAtDefaultThreshold) {
  TreeCounterParams params;
  params.k = 4;
  Simulator sim(std::make_unique<TreeCounter>(params), {});
  run_sequential(sim, schedule_sequential(1024));
  const auto profile = tree_level_profile(sim);
  EXPECT_EQ(profile.back().retirements, 0);
  EXPECT_EQ(profile.back().pool_budget_per_node, 0);
  EXPECT_EQ(profile.back().distinct_incumbents, profile.back().nodes);
}

TEST(TreeProfile, TextRenderingContainsEveryLevel) {
  TreeCounterParams params;
  params.k = 2;
  Simulator sim(std::make_unique<TreeCounter>(params), {});
  run_sequential(sim, schedule_sequential(8));
  const std::string text = to_string(tree_level_profile(sim));
  EXPECT_NE(text.find("level"), std::string::npos);
  EXPECT_NE(text.find("pool budget"), std::string::npos);
}

}  // namespace
}  // namespace dcnt
