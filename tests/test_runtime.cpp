// Threaded runtime: mailbox delivery, quiescence, timers, sharding
// guard rails, and exact load accounting under real concurrency. These
// tests (quick-labeled) run in the TSan CI job — they are the ones with
// actual data races to find.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "baselines/central.hpp"
#include "core/tree_counter.hpp"
#include "harness/factory.hpp"
#include "harness/schedule.hpp"
#include "harness/throughput.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/threaded_runtime.hpp"
#include "runtime/workload.hpp"
#include "support/rng.hpp"

namespace dcnt {
namespace {

TEST(Mailbox, MultiProducerDrainsEverythingExactlyOnce) {
  Mailbox box;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        RuntimeEvent ev;
        ev.msg.tag = p * kPerProducer + i;
        box.push(std::move(ev));
      }
    });
  }
  for (auto& t : producers) t.join();
  std::multiset<int> seen;
  std::vector<RuntimeEvent> batch;
  while (box.drain(batch)) {
    for (const auto& ev : batch) seen.insert(ev.msg.tag);
  }
  ASSERT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  for (int tag = 0; tag < kProducers * kPerProducer; ++tag) {
    EXPECT_EQ(seen.count(tag), 1u) << tag;
  }
}

TEST(Mailbox, PushAllMovesWholeBatchesFromMultipleProducers) {
  Mailbox box;
  constexpr int kProducers = 4;
  constexpr int kBatches = 100;
  constexpr int kPerBatch = 20;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      std::vector<RuntimeEvent> batch;
      for (int b = 0; b < kBatches; ++b) {
        for (int i = 0; i < kPerBatch; ++i) {
          RuntimeEvent ev;
          ev.msg.tag = (p * kBatches + b) * kPerBatch + i;
          batch.push_back(std::move(ev));
        }
        box.push_all(batch);
        // The batch buffer comes back empty and reusable.
        ASSERT_TRUE(batch.empty());
      }
    });
  }
  for (auto& t : producers) t.join();
  std::multiset<int> seen;
  std::vector<RuntimeEvent> out;
  while (box.drain(out)) {
    for (const auto& ev : out) seen.insert(ev.msg.tag);
  }
  constexpr int kTotal = kProducers * kBatches * kPerBatch;
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kTotal));
  for (int tag = 0; tag < kTotal; ++tag) {
    EXPECT_EQ(seen.count(tag), 1u) << tag;
  }
}

TEST(Mailbox, PushAllOfEmptyBatchIsANoOp) {
  Mailbox box;
  std::vector<RuntimeEvent> empty;
  box.push_all(empty);
  std::vector<RuntimeEvent> out;
  EXPECT_FALSE(box.drain(out));
}

// push_all must wake a parked owner: one wake per batch is the whole
// point of the batched hand-off, so a lost wake here would deadlock a
// dry worker forever.
TEST(Mailbox, PushAllWakesAParkedOwner) {
  Mailbox box;
  std::atomic<bool> stop{false};
  std::atomic<int> delivered{0};
  std::thread owner([&] {
    std::vector<RuntimeEvent> out;
    for (;;) {
      if (!box.wait(stop) && stop.load()) return;
      while (box.drain(out)) {
        delivered.fetch_add(static_cast<int>(out.size()));
      }
    }
  });
  std::vector<RuntimeEvent> batch(17);
  // Outlast the spin phase so the owner is (very likely) parked on the
  // condvar by the time the batch arrives; correctness does not depend
  // on winning that race, only the coverage does.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.push_all(batch);
  while (delivered.load() < 17) std::this_thread::yield();
  stop.store(true);
  box.wake();
  owner.join();
  EXPECT_EQ(delivered.load(), 17);
}

// The stop flag must win even when mail keeps arriving: wait() reports
// mail, the caller drains and re-checks stop.
TEST(Mailbox, WaitObservesStopWithoutMail) {
  Mailbox box;
  std::atomic<bool> stop{false};
  std::thread owner([&] {
    EXPECT_FALSE(box.wait(stop));  // no mail ever arrives
    EXPECT_TRUE(stop.load());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true);
  box.wake();
  owner.join();
}

TEST(ThreadedRuntime, WaitQuiescentOnIdleRuntimeReturnsImmediately) {
  RuntimeConfig config;
  config.workers = 2;
  ThreadedRuntime rt(std::make_unique<CentralCounter>(4), config);
  rt.wait_quiescent();  // must not hang
  EXPECT_EQ(rt.ops_started(), 0u);
  EXPECT_EQ(rt.merged_metrics().total_messages(), 0);
}

// Central counter: an inc from origin != holder is exactly one request
// plus one reply; an inc at the holder is free. The merged metrics must
// reproduce that count exactly, whatever the thread count.
TEST(ThreadedRuntime, CentralLoadAccountingIsExact) {
  for (const std::size_t workers : {1u, 2u, 4u}) {
    const std::int64_t n = 8;
    const std::size_t ops = 512;
    RuntimeConfig config;
    config.workers = workers;
    config.seed = 5;
    config.max_ops = ops;
    ThreadedRuntime rt(std::make_unique<CentralCounter>(n), config);

    std::vector<ProcessorId> initiators(ops);
    std::int64_t remote = 0;
    for (std::size_t i = 0; i < ops; ++i) {
      initiators[i] = static_cast<ProcessorId>(i % n);
      if (initiators[i] != 0) ++remote;  // holder is processor 0
    }
    WorkloadOptions wl;
    wl.concurrency = 16;
    const WorkloadResult run = run_workload(rt, initiators, wl);
    EXPECT_EQ(run.ops, ops);
    EXPECT_GT(run.ops_per_sec, 0.0);
    EXPECT_EQ(static_cast<std::size_t>(run.traffic.count), ops);
    EXPECT_TRUE(run.traffic.exact);  // small run: exact per-op storage

    const Metrics m = rt.merged_metrics();
    EXPECT_EQ(m.total_messages(), 2 * remote);
    std::int64_t load_sum = 0;
    for (ProcessorId p = 0; p < n; ++p) load_sum += m.load(p);
    EXPECT_EQ(load_sum, 2 * m.total_messages());
    // The holder receives every request and sends every reply.
    EXPECT_EQ(m.load(0), 2 * remote);
    EXPECT_EQ(m.bottleneck(), 0);
  }
}

TEST(ThreadedRuntime, ValuesArePermutationForEveryCounterAndWorkerCount) {
  for (const CounterKind kind :
       {CounterKind::kCentral, CounterKind::kTree, CounterKind::kCombining,
        CounterKind::kDiffracting}) {
    for (const std::size_t workers : {1u, 2u, 4u}) {
      ThroughputOptions options;
      options.workers = workers;
      options.ops = 256;
      options.concurrency = 8;
      options.seed = 3;
      options.initiators = "uniform";
      const ThroughputResult res =
          run_throughput(make_counter(kind, 8), options);
      EXPECT_TRUE(res.values_ok) << to_string(kind) << " W=" << workers;
      EXPECT_EQ(res.ops, 256u);
      EXPECT_GT(res.ops_per_sec, 0.0);
      EXPECT_GT(res.total_messages, 0);
      EXPECT_GE(res.p99_us, res.p50_us);
    }
  }
}

// Warmup ops run first, complete, and leave no trace in the metrics:
// the measured phase of a central run must show exactly the measured
// ops' request/reply traffic, as if the warmup never happened.
TEST(ThreadedRuntime, WarmupOpsAreExcludedFromMetricsAndLatency) {
  const std::int64_t n = 8;
  ThroughputOptions options;
  options.workers = 2;
  options.ops = 128;
  options.warmup = 64;
  options.concurrency = 8;
  options.seed = 9;
  options.initiators = "roundrobin";
  const ThroughputResult res =
      run_throughput(std::make_unique<CentralCounter>(n), options);
  EXPECT_TRUE(res.values_ok);  // permutation over warmup + measured
  EXPECT_EQ(res.ops, 128u);
  EXPECT_EQ(res.warmup, 64u);
  // Round-robin over n=8: 7 of every 8 measured ops are remote, each
  // costing one request + one reply. Any warmup leakage would inflate
  // this exact count.
  EXPECT_EQ(res.total_messages, 2 * (128 / 8) * (n - 1));
  EXPECT_GT(res.ops_per_sec, 0.0);
}

TEST(ThreadedRuntime, ZipfAndOpenLoopWorkloadsComplete) {
  ThroughputOptions options;
  options.workers = 2;
  options.ops = 128;
  options.seed = 11;
  options.initiators = "zipf";
  options.zipf_s = 1.0;
  const ThroughputResult closed =
      run_throughput(make_counter(CounterKind::kTree, 8), options);
  EXPECT_TRUE(closed.values_ok);

  options.open_rate = 50'000.0;  // open loop at 50k/s
  const ThroughputResult open =
      run_throughput(make_counter(CounterKind::kCentral, 8), options);
  EXPECT_TRUE(open.values_ok);
  EXPECT_GT(open.wall_seconds, 0.0);
}

// A protocol driven purely by send_local timers: completion depends on
// the idle clock-jump, and quiescence must wait for armed timers.
struct TimerCounter final : CounterProtocol {
  std::int64_t count{0};

  std::size_t num_processors() const override { return 1; }
  void start_inc(Context& ctx, ProcessorId origin, OpId /*op*/) override {
    ctx.send_local(origin, 1, {}, 5);
  }
  void on_message(Context& ctx, const Message& msg) override {
    EXPECT_TRUE(msg.local);
    ctx.complete(msg.op, count++);
  }
  std::unique_ptr<CounterProtocol> clone_counter() const override {
    return std::make_unique<TimerCounter>(*this);
  }
  std::string name() const override { return "timer-counter"; }
  bool shard_safe() const override { return true; }
};

TEST(ThreadedRuntime, TimersFireViaIdleClockJump) {
  RuntimeConfig config;
  config.workers = 2;  // processor 0 lives on shard 0; shard 1 idles
  config.max_ops = 8;
  ThreadedRuntime rt(std::make_unique<TimerCounter>(), config);
  for (std::int64_t i = 0; i < 8; ++i) {
    const OpId op = rt.begin_inc(0);
    rt.wait_quiescent();
    ASSERT_TRUE(rt.result(op).has_value());
    EXPECT_EQ(*rt.result(op), i);
  }
  EXPECT_EQ(rt.ops_completed(), 8u);
  // Timers are local: no network traffic at all.
  EXPECT_EQ(rt.merged_metrics().total_messages(), 0);
}

TEST(ThreadedRuntime, ShardSafetyDefaultsMatchTheAudit) {
  EXPECT_TRUE(make_counter(CounterKind::kCentral, 8)->shard_safe());
  EXPECT_TRUE(make_counter(CounterKind::kTree, 8)->shard_safe());
  EXPECT_TRUE(make_counter(CounterKind::kStaticTree, 8)->shard_safe());
  EXPECT_TRUE(make_counter(CounterKind::kCombining, 8)->shard_safe());
  EXPECT_TRUE(make_counter(CounterKind::kDiffracting, 8)->shard_safe());
  // Not audited for sharding: default-declines.
  EXPECT_FALSE(make_counter(CounterKind::kQuorumMajority, 8)->shard_safe());
  EXPECT_FALSE(make_counter(CounterKind::kCountingNetwork, 8)->shard_safe());
  // The healing tree relies on transport suspicion the runtime lacks.
  TreeServiceParams healing;
  healing.k = 2;
  healing.self_healing = true;
  EXPECT_FALSE(TreeCounter(healing).shard_safe());
}

TEST(ThreadedRuntimeDeathTest, RejectsShardUnsafeProtocolAtMultipleWorkers) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RuntimeConfig config;
  config.workers = 2;
  EXPECT_DEATH(
      ThreadedRuntime(make_counter(CounterKind::kQuorumMajority, 8), config),
      "shard_safe");
  // One worker is always allowed.
  RuntimeConfig single;
  single.workers = 1;
  ThreadedRuntime rt(make_counter(CounterKind::kQuorumMajority, 8), single);
  EXPECT_EQ(rt.workers(), 1u);
}

}  // namespace
}  // namespace dcnt
