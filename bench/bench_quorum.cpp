// QRM — the related-work tie-in: the paper's Hot Spot Lemma is the
// quorum intersection argument ([Mae85]), and the authors call their
// construction a kind of "Dynamic Quorum System". This bench puts the
// classic *static* quorum systems next to it:
//
//   table 1: structural properties — quorum size and the rotation-load
//            (Naor-Wool style) of each construction;
//   table 2: the quorum-based counter's measured bottleneck per system,
//            with the paper's tree counter as the last row. Static
//            systems pay Theta(quorum size) per op at the busiest
//            element; the paper's dynamic construction pays O(k) total.
//
// Flags: --n=81 --seed=19
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "analysis/report.hpp"
#include "core/tree_counter.hpp"
#include "core/bound.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "quorum/crumbling_wall.hpp"
#include "quorum/grid.hpp"
#include "quorum/hierarchical.hpp"
#include "quorum/majority.hpp"
#include "quorum/probe.hpp"
#include "quorum/projective_plane.hpp"
#include "quorum/quorum_analysis.hpp"
#include "quorum/quorum_counter.hpp"
#include "quorum/tree_quorum.hpp"
#include "quorum/weighted.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "QRM: quorum-system hot spots vs the counting bottleneck",
      {"n", "seed"});
  const std::int64_t n = flags.get_int("n", 81);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 19));

  std::vector<std::shared_ptr<const QuorumSystem>> systems = {
      std::make_shared<SingletonQuorum>(n, 0),
      std::make_shared<MajorityQuorum>(n),
      std::shared_ptr<const QuorumSystem>(
          WeightedMajorityQuorum::weighted_leader(n, 0.4)),
      std::make_shared<GridQuorum>(n),
      std::make_shared<TreeQuorum>(n),
      std::shared_ptr<const QuorumSystem>(CrumblingWall::triangle(n)),
  };
  {
    // Hierarchical quorum consensus needs n = 3^levels; include it when
    // the requested size qualifies (the default n=81 does).
    std::int64_t p3 = 3;
    while (p3 < n) p3 *= 3;
    if (p3 == n) {
      systems.push_back(std::make_shared<HierarchicalQuorum>(n, 3));
    }
  }

  {
    Table table({"system", "mean |Q|", "max |Q|", "rotation load",
                 "intersections ok"});
    Rng rng(seed);
    for (const auto& system : systems) {
      const auto load = rotation_load(*system, 4 * n);
      const auto inter = check_pairwise_intersection(*system, 128, 4000, rng);
      table.row()
          .add(system->name())
          .add(load.mean_quorum_size, 1)
          .add(load.max_quorum_size)
          .add(load.max_load, 3)
          .add(inter.all_intersect ? "yes" : "NO");
    }
    table.print(std::cout,
                "QRM: static quorum systems on n=" + std::to_string(n) +
                    " (load = busiest element's share of ops)");
  }

  {
    Table table(
        {"counter", "n", "max_load", "mean_load", "total_msgs", "max/k(n)"});
    for (const auto& system : systems) {
      SimConfig cfg;
      cfg.seed = seed;
      cfg.delay = DelayModel::uniform(1, 8);
      Simulator sim(std::make_unique<QuorumCounter>(system), cfg);
      run_sequential(sim, schedule_sequential(n));
      const LoadReport report = make_load_report(sim);
      table.row()
          .add("quorum(" + system->name() + ")")
          .add(n)
          .add(report.max_load)
          .add(report.mean_load, 2)
          .add(report.total_messages)
          .add(report.load_per_k, 1);
    }
    {
      TreeCounterParams params;
      params.k = ceil_k_for(n);
      SimConfig cfg;
      cfg.seed = seed;
      cfg.delay = DelayModel::uniform(1, 8);
      Simulator sim(std::make_unique<TreeCounter>(params), cfg);
      const auto tree_n = static_cast<std::int64_t>(sim.num_processors());
      run_sequential(sim, schedule_sequential(tree_n));
      const LoadReport report = make_load_report(sim);
      table.row()
          .add("tree (paper, dynamic)")
          .add(tree_n)
          .add(report.max_load)
          .add(report.mean_load, 2)
          .add(report.total_messages)
          .add(report.load_per_k, 1);
    }
    table.print(std::cout,
                "QRM: counters built on static quorums vs the paper's "
                "dynamic construction (one inc per processor, sequential)");
  }

  // Probe complexity [PW96]: how many probes to find a live quorum (or
  // certify none) as elements die.
  {
    Table table({"system", "probes (all alive)", "probes (all dead)",
                 "mean probes p=0.1", "find rate p=0.1", "mean probes p=0.3",
                 "find rate p=0.3"});
    Rng rng(seed + 1);
    for (const auto& system : systems) {
      const auto p10 = probe_complexity(*system, 0.1, 200, rng);
      const auto p30 = probe_complexity(*system, 0.3, 200, rng);
      table.row()
          .add(system->name())
          .add(p10.all_alive)
          .add(p10.all_dead)
          .add(p10.random_probes.mean(), 1)
          .add(p10.find_rate, 2)
          .add(p30.random_probes.mean(), 1)
          .add(p30.find_rate, 2);
    }
    table.print(std::cout,
                "QRM: probe complexity under random failures ([PW96]; "
                "greedy prober)");
  }

  // The classical optimum among static systems: projective planes
  // (available only at n = q^2+q+1 for prime q; compared at the largest
  // such size <= n against a grid of the same size).
  {
    const int q = ProjectivePlaneQuorum::order_for(n);
    if (q >= 2) {
      const ProjectivePlaneQuorum fpp(q);
      const std::int64_t fpp_n = fpp.universe_size();
      // Two grids: the default near-square one (ragged — n = q^2+q+1 is
      // never a nice rectangle, and a lonely last-row element ends up
      // in *every* quorum: load 1, a real pitfall of ragged grids) and
      // one using an exact divisor of n.
      const GridQuorum ragged(fpp_n);
      std::int64_t cols = 1;
      for (std::int64_t d = 2; d * d <= fpp_n; ++d) {
        if (fpp_n % d == 0) cols = d;
      }
      const GridQuorum exact(fpp_n, std::max<std::int64_t>(cols, 1));
      Table table({"system", "n", "mean |Q|", "rotation load"});
      struct Row {
        const QuorumSystem* system;
        const char* label;
      };
      for (const Row& row : std::initializer_list<Row>{
               {&fpp, "projective plane"},
               {&exact, "grid (exact factorization)"},
               {&ragged, "grid (ragged, default)"}}) {
        const auto load = rotation_load(*row.system, 10 * fpp_n);
        table.row()
            .add(row.label)
            .add(fpp_n)
            .add(load.mean_quorum_size, 2)
            .add(load.max_load, 4);
      }
      table.print(std::cout,
                  "QRM: projective plane (optimal static load ~1/sqrt(n)) "
                  "vs grids at matched size — note the ragged grid's "
                  "universal-element pathology");
    }
  }
  return 0;
}
