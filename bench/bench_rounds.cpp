// ROUNDS — beyond the paper's workload: R rounds of one-inc-per-
// processor. The §4 pools are sized for exactly one round (level-i
// pools support k^(k-i) - 1 retirements), so later rounds wrap pools —
// implemented and counted, costing nothing in correctness. Expected
// shape: the bottleneck grows ~linearly in R (the amortized O(k) per
// round survives), while a static tree pays Theta(R * n) at the root.
//
// Flags: --k=3 --rounds=6 --seed=10
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "ROUNDS: repeated one-inc-per-processor rounds beyond the paper's workload",
      {"k", "rounds", "seed"});
  const int k = static_cast<int>(flags.get_int("k", 3));
  const int rounds = static_cast<int>(flags.get_int("rounds", 6));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 10));

  TreeCounterParams params;
  params.k = k;
  SimConfig cfg;
  cfg.seed = seed;
  cfg.delay = DelayModel::uniform(1, 8);
  Simulator sim(std::make_unique<TreeCounter>(params), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());

  Table table({"round", "ops so far", "max_load", "max_load/round/k",
               "pool_wraps", "retirements"});
  std::vector<double> xs;
  std::vector<double> ys;
  for (int r = 1; r <= rounds; ++r) {
    Rng rng(seed + static_cast<std::uint64_t>(r));
    run_sequential(sim, schedule_permutation(n, rng));
    const auto& tc = dynamic_cast<const TreeCounter&>(sim.counter());
    const auto max_load = sim.metrics().max_load();
    table.row()
        .add(r)
        .add(static_cast<std::int64_t>(sim.ops_completed()))
        .add(max_load)
        .add(static_cast<double>(max_load) / (r * k), 2)
        .add(tc.stats().pool_wraps)
        .add(tc.stats().retirements_total);
    xs.push_back(static_cast<double>(r));
    ys.push_back(static_cast<double>(max_load));
  }
  table.print(std::cout,
              "ROUNDS: repeated one-inc-per-processor rounds on the tree "
              "counter (k=" + std::to_string(k) + ", n=" + std::to_string(n) +
                  ")");
  const LinearFit fit = fit_linear(xs, ys);
  std::cout << "\nmax_load ~= " << format_double(fit.intercept, 1) << " + "
            << format_double(fit.slope, 1) << " * round (r^2 = "
            << format_double(fit.r2, 4)
            << ") — amortized O(k) per round; pools wrap as designed after "
               "round 1.\n";
  return 0;
}
