// CONC — load concentration across implementations, in the spirit of
// Dwork, Herlihy & Waarts' contention framework [DHW93] (paper, Related
// Work). The bottleneck (max load) is the paper's measure; Gini and
// top-share describe how the *rest* of the traffic is spread. Expected
// shape: the central counter concentrates ~half of all message handling
// on one processor (Gini -> 1); the tree counter spreads it almost
// uniformly (Gini small, top-1% share ~ its population share).
//
// Flags: --sizes=81,256,1024 --seed=6
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "analysis/concentration.hpp"
#include "analysis/report.hpp"
#include "harness/factory.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

namespace {
std::vector<std::int64_t> parse_sizes(const std::string& text) {
  std::vector<std::int64_t> sizes;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) sizes.push_back(std::stoll(item));
  return sizes;
}
}  // namespace

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "CONC: load concentration across counter implementations",
      {"seed", "sizes"});
  const auto sizes = parse_sizes(flags.get_string("sizes", "81,256,1024"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 6));

  Table table({"counter", "n", "max_load", "max/mean", "gini", "top1%",
               "top10%"});
  for (const std::int64_t n : sizes) {
    for (const CounterKind kind : all_counter_kinds()) {
      SimConfig cfg;
      cfg.seed = seed;
      cfg.delay = DelayModel::uniform(1, 8);
      Simulator sim(make_counter(kind, n), cfg);
      const auto actual_n = static_cast<std::int64_t>(sim.num_processors());
      run_sequential(sim, schedule_sequential(actual_n));
      const auto report = concentration(sim.metrics());
      table.row()
          .add(to_string(kind))
          .add(actual_n)
          .add(sim.metrics().max_load())
          .add(report.max_over_mean, 1)
          .add(report.gini, 3)
          .add(report.top1_share, 3)
          .add(report.top10_share, 3);
    }
  }
  table.print(std::cout,
              "CONC: message-load concentration (one inc per processor, "
              "sequential)");
  std::cout << "\nshape: central gini -> 1 (one processor does ~half of all "
               "handling);\ntree stays near-uniform while still meeting the "
               "Omega(k) floor.\n";
  return 0;
}
