// NET — what real sockets cost: the multi-process cluster runtime
// (dcnt_node processes over localhost TCP or lossy UDP) versus the
// in-process threaded runtime at matched protocol, n, and parallelism.
//
// Each mode runs the identical closed-loop workload and verifies the
// returned values are an exact permutation of 0..ops-1, so every row
// is also a correctness check. Protocol-level message loads (m_p, the
// paper's bottleneck quantity) match the in-process runtime on the TCP
// rows up to the tree's O(1)-per-handover slack; the UDP rows run
// behind the reliable transport, whose Data/Ack envelopes are protocol
// messages too — the m_p delta is exactly what at-least-once delivery
// costs in the paper's own currency. Wall-clock columns price the
// transport itself: loopback TCP costs microseconds per hop where the
// in-process runtime costs nanoseconds, and the lossy rows add
// retransmission stalls on top.
//
// Each run starts with `--warmup` unmeasured closed-loop ops: the
// connection setup, allocator cold-start and first-touch faults settle,
// a cluster-wide quiescence barrier fires, the nodes reset their
// metrics, and only then does the measured phase begin. The wr_B column
// (wire bytes per kernel write()) is the coalescing observable: the
// event loop batches every frame queued in one drain round into a
// single write() per peer.
//
// The cluster rows sweep `--pipelines` (closed-loop pipeline depth D:
// each of the `--concurrency` slots keeps D ops outstanding). D=1 is
// the classic one-op-per-slot closed loop; D>1 amortises the
// per-wakeup syscall cost across a deeper in-flight window — the lever
// the v2 reactor/threading work targets. Every depth is still verified
// as an exact permutation. p50/p99 latency is per-op as stamped at the
// controller, so at D>1 it includes queueing behind the same slot's
// earlier ops.
//
// With --inflight_list set (default 1,8,64,256), each counter also runs
// "tcp-conc" rows: the concurrency plane's closed-loop window sweep on
// the real TCP mesh. Each of the --concurrency slots keeps F ops
// outstanding (window = concurrency * F), the controller records every
// op's (invoke, response, value) triple in a history buffer, and
// check_linearizable runs over the real socket history after quiesce —
// the lin/viol columns are measured, not assumed. Serializing counters
// (tree, central, combining, elastic) must come back linearizable at
// every F; balancer-based ones (diffracting, counting networks) are
// only quiescent-consistent and may not.
//
// With --rates set, each counter also runs open-loop "tcp-open" rows:
// the controller paces Starts on a deterministic arrival timeline
// (--shape/--period/--amplitude/--duty) and stamps latency from each
// op's *scheduled* arrival, so queueing in the mesh counts against the
// tail (coordinated-omission-free); --slo_us adds attainment and
// --duration caps the run by wall clock instead of op count.
//
//   $ bench_net [--counters=tree,central] [--n=16] [--nodes=4]
//               [--ops_factor=16] [--concurrency=16] [--drop=0.05]
//               [--pipelines=1,8] [--inflight_list=1,8,64,256]
//               [--loops=1] [--shards_per_node=0]
//               [--backend=] [--warmup=64] [--seed=7]
//               [--rates=] [--shape=constant] [--period=1]
//               [--amplitude=0.5] [--duty=0.5] [--duration=0]
//               [--slo_us=0] [--exact_cap=65536]
//               [--out=BENCH_net.json]
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/cluster.hpp"
#include "harness/factory.hpp"
#include "harness/throughput.hpp"
#include "support/check.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

namespace {

/// One row of the comparison, whichever runtime produced it.
struct NetRow {
  std::string counter;
  std::string mode;  ///< "inproc", "tcp", "udp", "udp-lossy", "tcp-conc"
  std::size_t pipeline{1};  ///< closed-loop depth per slot (1 for inproc)
  std::size_t inflight{0};  ///< tcp-conc rows: F ops outstanding per slot
  std::size_t n{0};
  std::size_t parallelism{0};  ///< workers (inproc) or nodes (cluster)
  std::size_t ops{0};
  double wall_seconds{0.0};
  double ops_per_sec{0.0};
  double mean_us{0.0};
  double p50_us{0.0};
  double p99_us{0.0};
  std::int64_t total_messages{0};
  std::int64_t max_load{0};
  std::int64_t wire_msgs{0};
  std::int64_t injected_drops{0};
  std::int64_t retransmissions{0};
  std::int64_t wire_bytes{0};
  std::int64_t write_syscalls{0};
  /// Wire bytes per kernel write() — how much frame coalescing the
  /// deferred-flush event loop achieved (0 for the in-process rows).
  double bytes_per_write{0.0};
  /// Open-loop rows ("tcp-open"): offered rate, deep tails measured
  /// from scheduled arrival, and SLO attainment.
  double rate{0.0};
  double p999_us{0.0};
  double p9999_us{0.0};
  double max_us{0.0};
  double slo_attainment{0.0};
  bool hdr_recorder{false};
  /// Linearizability verdict over the run's real recorded history
  /// (concurrent::check_linearizable; lin_checked says it ran).
  bool lin_checked{false};
  bool linearizable{false};
  std::int64_t lin_violations{0};
};

NetRow from_throughput(const ThroughputResult& r) {
  NetRow row;
  row.counter = r.counter;
  row.mode = "inproc";
  row.n = r.n;
  row.parallelism = r.workers;
  row.ops = r.ops;
  row.wall_seconds = r.wall_seconds;
  row.ops_per_sec = r.ops_per_sec;
  row.mean_us = r.mean_us;
  row.p50_us = r.p50_us;
  row.p99_us = r.p99_us;
  row.total_messages = r.total_messages;
  row.max_load = r.max_load;
  row.lin_checked = r.lin_checked;
  row.linearizable = r.linearizable;
  row.lin_violations = r.lin_violations;
  return row;
}

NetRow from_cluster(const net::ClusterResult& r, const std::string& mode,
                    std::size_t pipeline) {
  NetRow row;
  row.counter = r.counter;
  row.mode = mode;
  row.pipeline = pipeline;
  row.n = r.n;
  row.parallelism = r.nodes;
  row.ops = r.ops;
  row.wall_seconds = r.wall_seconds;
  row.ops_per_sec = r.ops_per_sec;
  row.mean_us = r.mean_us;
  row.p50_us = r.p50_us;
  row.p99_us = r.p99_us;
  row.total_messages = r.total_messages;
  row.max_load = r.max_load;
  row.wire_msgs = r.wire_msgs_sent;
  row.injected_drops = r.injected_drops;
  row.retransmissions = r.retransmissions;
  row.wire_bytes = r.wire_bytes_sent;
  row.write_syscalls = r.wire_write_syscalls;
  row.p999_us = r.p999_us;
  row.p9999_us = r.p9999_us;
  row.max_us = r.max_us;
  row.slo_attainment = r.slo_attainment;
  row.hdr_recorder = r.hdr_recorder;
  row.lin_checked = r.lin_checked;
  row.linearizable = r.linearizable;
  row.lin_violations = r.lin_violations;
  if (r.wire_write_syscalls > 0) {
    row.bytes_per_write = static_cast<double>(r.wire_bytes_sent) /
                          static_cast<double>(r.wire_write_syscalls);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "NET: socket cluster runtime vs in-process runtime at matched "
      "protocol/n/parallelism",
      {"amplitude", "backend", "concurrency", "counters", "drop", "duration",
       "duty", "exact_cap", "inflight_list", "loops", "n", "nodes",
       "ops_factor", "out", "period", "pipelines", "rates", "seed", "shape",
       "shards_per_node", "slo_us", "warmup"});
  const auto counters =
      parse_string_list(flags.get_string("counters", "tree,central"));
  const std::int64_t n = flags.get_int("n", 16);
  const auto nodes = static_cast<std::uint32_t>(flags.get_int("nodes", 4));
  const std::int64_t ops_factor = flags.get_int("ops_factor", 16);
  const auto concurrency =
      static_cast<std::size_t>(flags.get_int("concurrency", 16));
  const double drop = flags.get_double("drop", 0.05);
  const auto pipelines = parse_int_list(flags.get_string("pipelines", "1,8"));
  // tcp-conc window sweep (empty disables): F outstanding ops per slot,
  // linearizability checked over the real socket history.
  const auto inflight_list =
      parse_int_list(flags.get_string("inflight_list", "1,8,64,256"));
  const auto loops = static_cast<std::uint32_t>(flags.get_int("loops", 1));
  // Default 0 = inline drive (the event-loop thread runs the protocol
  // shard itself): the fastest topology wherever nodes outnumber cores,
  // and the configuration the checked-in BENCH_net.json is measured at.
  const auto shards_per_node =
      static_cast<std::uint32_t>(flags.get_int("shards_per_node", 0));
  const std::string backend = flags.get_string("backend", "");
  const auto warmup = static_cast<std::size_t>(flags.get_int("warmup", 64));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::string out = flags.get_string("out", "BENCH_net.json");
  // Open-loop cluster rows (--rates non-empty): the controller paces
  // Start frames on the deterministic arrival timeline and stamps
  // latency from scheduled arrival — queueing in the mesh counts.
  const auto rates = parse_double_list(flags.get_string("rates", ""));
  const std::string shape = flags.get_string("shape", "constant");
  const double period = flags.get_double("period", 1.0);
  const double amplitude = flags.get_double("amplitude", 0.5);
  const double duty = flags.get_double("duty", 0.5);
  const double duration = flags.get_double("duration", 0.0);
  const double slo_us = flags.get_double("slo_us", 0.0);
  const auto exact_cap =
      static_cast<std::size_t>(flags.get_int("exact_cap", 1 << 16));

  Table table({"counter", "mode", "pipe", "n", "par", "ops", "inc/s", "p50_us",
               "p99_us", "total_msgs", "max_load", "wire_msgs", "wr_B", "retx",
               "lin", "viol"});
  std::vector<NetRow> rows;

  for (const std::string& name : counters) {
    const CounterKind kind = counter_kind_from_string(name);
    auto probe = make_counter(kind, n);
    if (!probe->shard_safe()) {
      std::cout << "skip: " << probe->name() << " (not shard-safe)\n";
      continue;
    }
    const std::size_t procs = probe->num_processors();
    const auto ops = static_cast<std::size_t>(ops_factor) * procs;

    // In-process baseline: worker count matched to the cluster's
    // process count, so both runtimes get the same parallelism budget.
    ThroughputOptions topt;
    topt.workers = nodes;
    topt.ops = ops;
    topt.concurrency = concurrency;
    topt.warmup = warmup;
    topt.seed = seed;
    NetRow inproc = from_throughput(run_throughput(make_counter(kind, n), topt));
    inproc.counter = name;  // cluster rows carry the flag name; match it
    rows.push_back(inproc);

    for (const std::int64_t depth : pipelines) {
      const auto d = static_cast<std::size_t>(depth > 0 ? depth : 1);
      net::ClusterOptions copt;
      copt.counter = name;
      copt.min_processors = n;
      copt.nodes = nodes;
      copt.ops = static_cast<std::int64_t>(ops);
      copt.concurrency = concurrency;
      copt.pipeline = d;
      copt.loops = loops;
      copt.shards_per_node = shards_per_node;
      copt.backend = backend;
      copt.warmup = warmup;
      copt.seed = seed;
      rows.push_back(from_cluster(net::run_cluster(copt), "tcp", d));

      copt.udp = true;
      copt.drop_probability = 0.0;
      rows.push_back(from_cluster(net::run_cluster(copt), "udp", d));

      if (drop > 0.0) {
        copt.drop_probability = drop;
        // Faster retransmission clock: at the default 200us tick the
        // first retry would wait ~3ms of wall time per lost datagram.
        copt.tick_us = 100;
        copt.retry.ack_timeout = 8;
        copt.retry.max_timeout = 64;
        copt.retry.max_attempts = 30;
        rows.push_back(from_cluster(net::run_cluster(copt), "udp-lossy", d));
      }
    }

    // Concurrency-plane rows on the TCP plane: each client slot keeps F
    // ops outstanding; the op count is scaled so every window refills a
    // few times, and the linearizability verdict comes from the real
    // socket history (serializing counters must pass at every F).
    for (const std::int64_t f : inflight_list) {
      const auto inflight = static_cast<std::size_t>(f > 0 ? f : 1);
      const std::size_t window = concurrency * inflight;
      net::ClusterOptions copt;
      copt.counter = name;
      copt.min_processors = n;
      copt.nodes = nodes;
      copt.ops = static_cast<std::int64_t>(std::max(ops, 4 * window));
      copt.concurrency = concurrency;
      copt.inflight = inflight;
      copt.loops = loops;
      copt.shards_per_node = shards_per_node;
      copt.backend = backend;
      copt.warmup = warmup;
      copt.seed = seed;
      NetRow row = from_cluster(net::run_cluster(copt), "tcp-conc", inflight);
      row.inflight = inflight;
      DCNT_CHECK_MSG(row.lin_checked, "tcp-conc row without a lin verdict");
      if (expected_linearizable(kind)) {
        DCNT_CHECK_MSG(row.linearizable,
                       "serializing counter failed linearizability on TCP");
      }
      rows.push_back(row);
    }

    // Open-loop rows on the TCP plane: one per offered rate.
    for (const double rate : rates) {
      net::ClusterOptions copt;
      copt.counter = name;
      copt.min_processors = n;
      copt.nodes = nodes;
      copt.ops = static_cast<std::int64_t>(ops);
      copt.loops = loops;
      copt.shards_per_node = shards_per_node;
      copt.backend = backend;
      copt.warmup = warmup;
      copt.seed = seed;
      copt.open_rate = rate;
      copt.shape = shape;
      copt.period_s = period;
      copt.amplitude = amplitude;
      copt.duty = duty;
      copt.duration_s = duration;
      copt.slo_us = slo_us;
      copt.exact_cap = exact_cap;
      NetRow row = from_cluster(net::run_cluster(copt), "tcp-open", 1);
      row.rate = rate;
      rows.push_back(row);
    }
  }

  for (const NetRow& r : rows) {
    table.row()
        .add(r.counter)
        .add(r.mode)
        .add(static_cast<std::int64_t>(r.pipeline))
        .add(static_cast<std::int64_t>(r.n))
        .add(static_cast<std::int64_t>(r.parallelism))
        .add(static_cast<std::int64_t>(r.ops))
        .add(r.ops_per_sec, 0)
        .add(r.p50_us, 1)
        .add(r.p99_us, 1)
        .add(r.total_messages)
        .add(r.max_load)
        .add(r.wire_msgs)
        .add(r.bytes_per_write, 1)
        .add(r.retransmissions)
        .add(r.lin_checked ? (r.linearizable ? "y" : "NO") : "-")
        .add(r.lin_violations);
  }
  table.print(std::cout,
              "NET: in-process runtime vs multi-process socket cluster "
              "(every run verified exact)");

  JsonWriter json(out);
  json.field("bench", "net");
  json.field("n", n);
  json.field("nodes", nodes);
  json.field("ops_factor", ops_factor);
  json.field("concurrency", concurrency);
  json.field("drop", drop, 3);
  json.field("loops", loops);
  json.field("shards_per_node", shards_per_node);
  json.field("backend", backend.empty() ? "default" : backend);
  json.field("warmup", warmup);
  json.field("seed", seed);
  json.begin_array("runs");
  for (const NetRow& r : rows) {
    json.begin_object();
    json.field("counter", r.counter);
    json.field("mode", r.mode);
    json.field("pipeline", r.pipeline);
    json.field("n", r.n);
    json.field("parallelism", r.parallelism);
    json.field("ops", r.ops);
    json.field("wall_seconds", r.wall_seconds, 4);
    json.field("ops_per_sec", r.ops_per_sec, 1);
    json.field("mean_us", r.mean_us, 2);
    json.field("p50_us", r.p50_us, 2);
    json.field("p99_us", r.p99_us, 2);
    if (r.mode == "tcp-open") {
      json.field("rate", r.rate, 1);
      json.field("shape", shape);
      json.field("p999_us", r.p999_us, 2);
      json.field("p9999_us", r.p9999_us, 2);
      json.field("max_us", r.max_us, 2);
      json.field("slo_us", slo_us, 1);
      json.field("slo_attainment", r.slo_attainment, 6);
      json.field("hdr_recorder", r.hdr_recorder ? 1 : 0);
    }
    if (r.mode == "tcp-conc") {
      json.field("inflight", r.inflight);
      json.field("window", r.inflight * concurrency);
    }
    json.field("lin_checked", r.lin_checked ? 1 : 0);
    json.field("linearizable", r.linearizable ? 1 : 0);
    json.field("lin_violations", r.lin_violations);
    json.field("total_messages", r.total_messages);
    json.field("max_load", r.max_load);
    json.field("wire_msgs", r.wire_msgs);
    json.field("wire_bytes", r.wire_bytes);
    json.field("write_syscalls", r.write_syscalls);
    json.field("bytes_per_write", r.bytes_per_write, 1);
    json.field("injected_drops", r.injected_drops);
    json.field("retransmissions", r.retransmissions);
    json.end_object();
  }
  json.end_array();
  return 0;
}
