// LEM-RET — the §4 lemma ledger, measured: Retirement Lemma, Number of
// Retirements Lemma (per-level retirement maxima vs the paper's pool
// budget k^(k-i) - 1), the per-operation message budget that follows
// from the Grow Old Lemma, and the Bottleneck Theorem, for k = 2..5.
//
// Flags: --kmax=5 --seed=7 --order=random|seq
#include <iostream>

#include "bench_util.hpp"
#include "analysis/audit.hpp"
#include "analysis/tree_profile.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "LEM-RET: the paper's S4 lemma ledger, measured",
      {"kmax", "order", "seed"});
  const int kmax = static_cast<int>(flags.get_int("kmax", 5));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const bool random_order = flags.get_string("order", "random") == "random";

  Table table({"k", "n", "retire/node/op<=1", "pools ok", "max op msgs",
               "op budget", "max_load", "load/k"});
  for (int k = 2; k <= kmax; ++k) {
    TreeCounterParams params;
    params.k = k;
    SimConfig cfg;
    cfg.seed = seed;
    cfg.delay = DelayModel::uniform(1, 8);
    Simulator sim(std::make_unique<TreeCounter>(params), cfg);
    const auto n = static_cast<std::int64_t>(sim.num_processors());
    Rng rng(seed + static_cast<std::uint64_t>(k));
    run_sequential(sim, random_order ? schedule_permutation(n, rng)
                                     : schedule_sequential(n));
    const TreeAuditReport report = audit_tree_run(sim);
    table.row()
        .add(k)
        .add(n)
        .add(report.retirement_lemma_ok ? "yes" : "NO")
        .add(report.pools_ok ? "yes" : "NO")
        .add(report.max_op_messages)
        .add(report.op_message_budget)
        .add(report.max_load)
        .add(report.load_per_k, 2);
  }
  table.print(std::cout, "LEM-RET: §4 lemma audit (all columns must hold)");

  // Per-level retirements against the paper's pool budget for one size.
  {
    const int k = std::min(kmax, 4);
    TreeCounterParams params;
    params.k = k;
    SimConfig cfg;
    cfg.seed = seed;
    Simulator sim(std::make_unique<TreeCounter>(params), cfg);
    const auto n = static_cast<std::int64_t>(sim.num_processors());
    run_sequential(sim, schedule_sequential(n));
    const TreeAuditReport report = audit_tree_run(sim);
    Table levels({"level", "max retirements per node", "pool budget k^(k-i)-1"});
    for (std::size_t level = 0; level < report.max_retirements_by_level.size();
         ++level) {
      levels.row()
          .add(static_cast<std::int64_t>(level))
          .add(report.max_retirements_by_level[level])
          .add(report.pool_budget_by_level[level]);
    }
    levels.print(std::cout,
                 "Number of Retirements Lemma, per level (k=" +
                     std::to_string(k) + ")");

    std::cout << "\n== per-level work profile (k=" << k
              << "): where the machinery's load lands ==\n"
              << to_string(tree_level_profile(sim));
  }
  return 0;
}
