// DIFF — steady-state behaviour of the diffracting tree, after Shavit,
// Upfal & Zemach's analysis [SUZ96] (paper, Related Work): prism size
// and patience trade diffraction probability against added latency.
//
// Under one big concurrent batch we sweep prism slots and patience and
// report the diffraction rate (pairs removed from the toggle path), the
// root toggle's load, and the simulated drain time. Expected shape:
// more slots / more patience => more diffraction => lighter toggles,
// until excess patience just delays lone tokens.
//
// Flags: --n=256 --width=4 --seed=14
#include <iostream>
#include <algorithm>
#include <memory>

#include "bench_util.hpp"
#include "baselines/diffracting_tree.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "DIFF: diffracting-tree steady state vs width",
      {"n", "seed", "width"});
  const std::int64_t n = flags.get_int("n", 256);
  const int width = static_cast<int>(flags.get_int("width", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 14));

  Table table({"slots", "patience", "diffracted pairs", "toggle passes",
               "root toggle load", "max_load", "drain time"});
  for (const int slots : {1, 2, 4, 8, 16}) {
    for (const SimTime patience : {2, 8, 32, 128}) {
      DiffractingTreeParams params;
      params.n = n;
      params.width = width;
      params.prism_slots = slots;
      params.patience = patience;
      SimConfig cfg;
      cfg.seed = seed;
      cfg.delay = DelayModel::uniform(1, 4);
      Simulator sim(std::make_unique<DiffractingTreeCounter>(params), cfg);
      run_concurrent(sim, make_batches(schedule_sequential(n),
                                       static_cast<std::size_t>(n)));
      const auto& tree =
          dynamic_cast<const DiffractingTreeCounter&>(sim.counter());
      // Drain = last op completion (quiescence additionally waits for
      // stale prism timeouts, which is not user-visible latency).
      SimTime drain = 0;
      for (OpId op = 0; op < static_cast<OpId>(sim.ops_completed()); ++op) {
        drain = std::max(drain, sim.op_responded_at(op));
      }
      table.row()
          .add(slots)
          .add(static_cast<std::int64_t>(patience))
          .add(tree.diffracted_pairs())
          .add(tree.toggle_passes())
          .add(sim.metrics().load(tree.toggle_pid(0)))
          .add(sim.metrics().max_load())
          .add(static_cast<std::int64_t>(drain));
    }
  }
  table.print(std::cout,
              "DIFF: prism size / patience sweep, one batch of n=" +
                  std::to_string(n) + " concurrent incs (width " +
                  std::to_string(width) + ")");
  std::cout << "\nshape [SUZ96]: diffraction rises with slots and patience, "
               "offloading the toggles;\npast the sweet spot extra patience "
               "only stretches drain time.\n";
  return 0;
}
