// GEN — §2's generality claim, measured: "the argument ... can be made
// for the family of all distributed data structures in which an
// operation depends on the operation that immediately precedes it.
// Examples ... are a bit that can be accessed and flipped, and a
// priority queue."
//
// We run the paper's workload on the tree counter, the tree flip-bit
// and the tree priority queue (all on the same §4 machinery) and show:
//   * identical O(k) bottleneck *message* loads and identical lemma
//     audits — the upper bound is object-agnostic;
//   * the one divergence, measured: root handovers ship the root state,
//     so the priority queue's max handover payload grows with the queue
//     while counter and bit stay O(1) words (the paper's O(log n)-bits
//     property is a property of *small-state* objects).
//
// Flags: --kmax=4 --seed=9
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "analysis/audit.hpp"
#include "core/tree_bit.hpp"
#include "core/tree_counter.hpp"
#include "core/tree_pq.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

namespace {

struct RunOutcome {
  std::int64_t max_load{0};
  std::int64_t total_msgs{0};
  std::int64_t retirements{0};
  std::int64_t max_handover_words{0};
  bool lemmas_ok{false};
};

RunOutcome drive(Simulator& sim, bool pq_mode) {
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  for (ProcessorId p = 0; p < n; ++p) {
    if (pq_mode) {
      // Fill phase then drain phase: the queue peaks at 3n/4 entries,
      // so root handovers mid-run must ship a large heap.
      if (p < 3 * n / 4) {
        sim.begin_op(p, {TreePriorityQueue::kOpInsert, p});
      } else {
        sim.begin_op(p, {TreePriorityQueue::kOpExtractMin});
      }
    } else {
      sim.begin_inc(p);
    }
    sim.run_until_quiescent();
  }
  const auto& service = dynamic_cast<const TreeService&>(sim.counter());
  const TreeAuditReport audit = audit_tree_run(sim);
  RunOutcome outcome;
  outcome.max_load = sim.metrics().max_load();
  outcome.total_msgs = sim.metrics().total_messages();
  outcome.retirements = service.stats().retirements_total;
  outcome.max_handover_words = service.stats().max_handover_words;
  outcome.lemmas_ok = audit.retirement_lemma_ok && audit.pools_ok;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "GEN: the model-generality claim measured across delay regimes",
      {"kmax", "seed"});
  const int kmax = static_cast<int>(flags.get_int("kmax", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 9));

  Table table({"service", "k", "n", "max_load", "max/k", "retirements",
               "max handover words", "lemmas"});
  for (int k = 2; k <= kmax; ++k) {
    TreeServiceParams params;
    params.k = k;
    SimConfig cfg;
    cfg.seed = seed;
    cfg.delay = DelayModel::uniform(1, 8);

    struct Variant {
      std::string label;
      std::unique_ptr<CounterProtocol> proto;
      bool pq;
    };
    std::vector<Variant> variants;
    variants.push_back({"counter (§4)", std::make_unique<TreeCounter>(params),
                        false});
    variants.push_back({"flip bit (§2)", std::make_unique<TreeFlipBit>(params),
                        false});
    variants.push_back(
        {"priority queue (§2)", std::make_unique<TreePriorityQueue>(params),
         true});
    for (auto& variant : variants) {
      Simulator sim(std::move(variant.proto), cfg);
      const auto n = static_cast<std::int64_t>(sim.num_processors());
      const RunOutcome outcome = drive(sim, variant.pq);
      table.row()
          .add(variant.label)
          .add(k)
          .add(n)
          .add(outcome.max_load)
          .add(static_cast<double>(outcome.max_load) / k, 2)
          .add(outcome.retirements)
          .add(outcome.max_handover_words)
          .add(outcome.lemmas_ok ? "hold" : "FAIL");
    }
  }
  table.print(std::cout,
              "GEN: the §4 machinery under the §2 sibling objects — same "
              "O(k) message bottleneck; handover payload is where the "
              "priority queue differs");
  return 0;
}
