// PERF — google-benchmark microbenchmarks of the simulation substrate:
// raw message throughput, protocol-specific per-op cost, and the cost
// of cloning (which gates the lower-bound adversary's step time).
#include <benchmark/benchmark.h>

#include <memory>

#include "analysis/adversary.hpp"
#include "baselines/central.hpp"
#include "core/tree_counter.hpp"
#include "harness/factory.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

void BM_CentralCounterOps(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Simulator sim(std::make_unique<CentralCounter>(n), {});
  ProcessorId p = 1;
  for (auto _ : state) {
    const OpId op = sim.begin_inc(p);
    sim.run_until_quiescent();
    benchmark::DoNotOptimize(sim.result(op));
    p = static_cast<ProcessorId>(p % (n - 1) + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CentralCounterOps)->Arg(64)->Arg(4096);

void BM_TreeCounterOps(benchmark::State& state) {
  TreeCounterParams params;
  params.k = static_cast<int>(state.range(0));
  Simulator sim(std::make_unique<TreeCounter>(params), {});
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  ProcessorId p = 0;
  for (auto _ : state) {
    const OpId op = sim.begin_inc(p);
    sim.run_until_quiescent();
    benchmark::DoNotOptimize(sim.result(op));
    p = static_cast<ProcessorId>((p + 1) % n);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_TreeCounterOps)->Arg(3)->Arg(4)->Arg(5);

void BM_TreeCounterFullSequence(benchmark::State& state) {
  TreeCounterParams params;
  params.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim(std::make_unique<TreeCounter>(params), {});
    const auto n = static_cast<std::int64_t>(sim.num_processors());
    const RunResult result = run_sequential(sim, schedule_sequential(n));
    benchmark::DoNotOptimize(result.max_load);
    state.SetItemsProcessed(state.items_processed() + n);
  }
}
BENCHMARK(BM_TreeCounterFullSequence)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SimulatorClone(benchmark::State& state) {
  TreeCounterParams params;
  params.k = static_cast<int>(state.range(0));
  Simulator sim(std::make_unique<TreeCounter>(params), {});
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  run_sequential(sim, schedule_sequential(n / 2));
  for (auto _ : state) {
    Simulator clone(sim);
    benchmark::DoNotOptimize(clone.ops_started());
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_SimulatorClone)->Arg(2)->Arg(3)->Arg(4);

void BM_SimulatorRestore(benchmark::State& state) {
  // The snapshot/restore fast path: same state transfer as BM_SimulatorClone
  // but into a warm scratch simulator — what the adversary pays per dry-run.
  TreeCounterParams params;
  params.k = static_cast<int>(state.range(0));
  Simulator sim(std::make_unique<TreeCounter>(params), {});
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  run_sequential(sim, schedule_sequential(n / 2));
  Simulator scratch(sim);
  for (auto _ : state) {
    scratch.restore(sim);
    benchmark::DoNotOptimize(scratch.ops_started());
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_SimulatorRestore)->Arg(2)->Arg(3)->Arg(4);

void BM_AdversaryFullGreedy(benchmark::State& state) {
  // Wall time of the whole §3 adversary at a given worker count; the
  // result is bit-identical across thread counts, so Arg sweeps measure
  // pure scheduling overhead/speedup.
  TreeCounterParams params;
  params.k = 3;  // n = 81
  SimConfig cfg;
  cfg.seed = 5;
  Simulator base(std::make_unique<TreeCounter>(params), cfg);
  AdversaryOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const AdversaryResult result = run_adversarial_sequence(base, options);
    benchmark::DoNotOptimize(result.max_load);
  }
  state.counters["threads"] = static_cast<double>(options.threads);
}
BENCHMARK(BM_AdversaryFullGreedy)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MessageThroughput(benchmark::State& state) {
  // Raw event-loop throughput via a ping-pong counter with random
  // delivery delays.
  Simulator sim(std::make_unique<CentralCounter>(2, 0),
                SimConfig{.seed = 1,
                          .delay = DelayModel::uniform(1, 4),
                          .fifo_channels = false,
                          .enable_trace = false});
  std::int64_t messages = 0;
  for (auto _ : state) {
    sim.begin_inc(1);
    sim.run_until_quiescent();
    messages += 2;
  }
  state.SetItemsProcessed(messages);
}
BENCHMARK(BM_MessageThroughput);

}  // namespace
}  // namespace dcnt

BENCHMARK_MAIN();
