// THM-LB — the Lower Bound Theorem (§3): "In any algorithm that
// implements a distributed counter on n processors there is a
// bottleneck processor that sends and receives >= k messages, where
// k*k^k = n."
//
// The clone-based greedy adversary (analysis/adversary.hpp) realizes
// the proof's sequence construction against *every* counter
// implementation. For each we report the measured bottleneck load next
// to the paper's k(n); the theorem predicts max_load >= ~k for all of
// them — the tree counter sits within a constant factor of k, the
// centralized designs overshoot by Theta(n/k).
//
// The second table exposes the proof's potential function w_i on a
// small instance (the quantity Figure 3's list-choice argument pumps
// up): the last processor's list weight rises as loads accumulate.
//
// Flags: --n=81 --sample=8 --seed=173 --weights_n=8
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "analysis/adversary.hpp"
#include "core/tree_counter.hpp"
#include "harness/factory.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "THM-LB: the Lower Bound Theorem's adversarial bottleneck",
      {"n", "sample", "seed", "weights_n"});
  const std::int64_t n = flags.get_int("n", 81);
  const auto sample = static_cast<std::size_t>(flags.get_int("sample", 8));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 173));
  const std::int64_t weights_n = flags.get_int("weights_n", 8);

  Table table({"counter", "n", "k(n)", "max_load", "max/k", "last_proc_load",
               "total_msgs"});
  for (const CounterKind kind : all_counter_kinds()) {
    SimConfig cfg;
    cfg.seed = seed;
    Simulator base(make_counter(kind, n), cfg);
    AdversaryOptions options;
    options.sample_candidates = sample;
    options.seed = seed;
    const AdversaryResult result = run_adversarial_sequence(base, options);
    table.row()
        .add(to_string(kind))
        .add(static_cast<std::int64_t>(base.num_processors()))
        .add(result.paper_k, 2)
        .add(result.max_load)
        .add(static_cast<double>(result.max_load) / result.paper_k, 2)
        .add(result.last_processor_load)
        .add(result.total_messages);
  }
  table.print(std::cout,
              "THM-LB: adversarial bottleneck per counter (paper: >= ~k(n) "
              "for every implementation)");

  // The proof's potential function on a small tree instance.
  {
    TreeCounterParams params;
    params.k = 2;
    (void)weights_n;
    SimConfig cfg;
    cfg.seed = seed;
    cfg.enable_trace = true;
    Simulator base(std::make_unique<TreeCounter>(params), cfg);
    AdversaryOptions options;
    options.record_weights = true;
    options.seed = seed;
    const AdversaryResult result = run_adversarial_sequence(base, options);
    Table wt({"step i", "chosen p", "msgs of op", "l_i (last's list)",
              "w_i (potential)"});
    for (std::size_t i = 0; i < result.steps.size(); ++i) {
      const auto& s = result.steps[i];
      wt.row()
          .add(static_cast<std::int64_t>(i))
          .add(static_cast<std::int64_t>(s.chosen))
          .add(s.messages)
          .add(s.last_list_len)
          .add(s.last_weight, 3);
    }
    wt.print(std::cout,
             "THM-LB: proof potential w_i along the adversarial run "
             "(tree, k=2, n=8; w_i climbs, forcing load >= ~k on the last "
             "processor)");
    std::printf("\nlast processor q = %d, final load m_q = %lld (k = %.2f)\n",
                result.last_processor,
                static_cast<long long>(result.last_processor_load),
                result.paper_k);
  }
  return 0;
}
