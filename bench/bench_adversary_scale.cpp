// PERF-ADV — the adversary's step cost and how it scales with threads.
//
// The §3 adversary dry-runs O(n) candidates per committed op; before
// the snapshot/restore fast path each dry-run paid a full deep clone of
// the Simulator, which kept adversarial sweeps stuck at small n. This
// bench quantifies the three quantities that govern a sweep:
//
//   * clone_us    — a fresh deep copy (the old per-dry-run cost),
//   * restore_us  — re-applying the same state into a warm scratch
//                   simulator (the new per-dry-run cost),
//   * dry-run throughput and run_adversarial_sequence wall time at
//     1/2/4/max threads, asserting the results stay bit-identical.
//
// Emits a JSON baseline (default BENCH_adversary.json; the checked-in
// copy at the repo root is the reference measurement for regression
// comparisons).
//
// Flags: --counter=combining --n_list=64,256,1024 --threads_list=1,2,4,0
//        --full_max_n=256 --sample=64 --schedule_samples=1 --seed=173
//        --repeats=3 --out=BENCH_adversary.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/adversary.hpp"
#include "harness/factory.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace dcnt;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<std::int64_t> parse_list(const std::string& text) {
  std::vector<std::int64_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoll(item));
  return out;
}

struct CloneCost {
  std::int64_t n{0};
  double clone_us{0};
  double restore_us{0};
  double dryrun_us{0};  ///< restore + one inc + quiescence, serial
};

CloneCost measure_clone_cost(CounterKind kind, std::int64_t n,
                             std::uint64_t seed) {
  SimConfig cfg;
  cfg.seed = seed;
  Simulator sim(make_counter(kind, n), cfg);
  const auto procs = static_cast<std::int64_t>(sim.num_processors());
  run_sequential(sim, schedule_sequential(procs / 2));  // mid-sweep state

  CloneCost cost;
  cost.n = procs;
  const int reps = 200;
  {
    const double t0 = now_ms();
    for (int r = 0; r < reps; ++r) {
      Simulator clone(sim);
      DCNT_CHECK(clone.ops_started() == sim.ops_started());
    }
    cost.clone_us = (now_ms() - t0) * 1000.0 / reps;
  }
  {
    Simulator scratch(sim);
    const double t0 = now_ms();
    for (int r = 0; r < reps; ++r) {
      scratch.restore(sim);
      DCNT_CHECK(scratch.ops_started() == sim.ops_started());
    }
    cost.restore_us = (now_ms() - t0) * 1000.0 / reps;
  }
  {
    Simulator scratch(sim);
    const double t0 = now_ms();
    for (int r = 0; r < reps; ++r) {
      scratch.restore(sim);
      const OpId op =
          scratch.begin_inc(static_cast<ProcessorId>(r % procs));
      scratch.run_until_quiescent();
      DCNT_CHECK(scratch.result(op).has_value());
    }
    cost.dryrun_us = (now_ms() - t0) * 1000.0 / reps;
  }
  return cost;
}

struct SweepPoint {
  std::int64_t n{0};
  std::size_t sample_candidates{0};
  std::size_t threads_requested{0};
  std::size_t threads_used{0};
  double wall_ms{0};
  std::int64_t max_load{0};
  double paper_k{0};
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const CounterKind kind =
      counter_kind_from_string(flags.get_string("counter", "combining"));
  const auto n_list = parse_list(flags.get_string("n_list", "64,256,1024"));
  // 0 in threads_list = auto (DCNT_THREADS env, else all hardware threads).
  const auto threads_list = parse_list(flags.get_string("threads_list", "1,2,4,0"));
  const std::int64_t full_max_n = flags.get_int("full_max_n", 256);
  const auto sample = static_cast<std::size_t>(flags.get_int("sample", 64));
  const auto schedule_samples =
      static_cast<std::size_t>(flags.get_int("schedule_samples", 1));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 173));
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));
  const std::string out = flags.get_string("out", "BENCH_adversary.json");

  Table clone_table({"n", "clone_us", "restore_us", "dryrun_us", "restore/clone"});
  std::vector<CloneCost> clone_costs;
  for (const std::int64_t n : n_list) {
    const CloneCost cost = measure_clone_cost(kind, n, seed);
    clone_costs.push_back(cost);
    clone_table.row()
        .add(cost.n)
        .add(cost.clone_us, 2)
        .add(cost.restore_us, 2)
        .add(cost.dryrun_us, 2)
        .add(cost.restore_us / std::max(cost.clone_us, 1e-9), 2);
  }
  clone_table.print(std::cout,
                    "PERF-ADV: per-snapshot cost (" + to_string(kind) +
                        "); restore() is the adversary's per-dry-run price");

  Table sweep_table(
      {"n", "candidates", "threads", "wall_ms", "speedup_vs_1t", "max_load"});
  std::vector<SweepPoint> sweep;
  for (const std::int64_t n : n_list) {
    double wall_1t = 0;
    const AdversaryResult* reference = nullptr;
    AdversaryResult first;
    for (const std::int64_t threads : threads_list) {
      SimConfig cfg;
      cfg.seed = seed;
      Simulator base(make_counter(kind, n), cfg);
      AdversaryOptions options;
      options.seed = seed;
      options.schedule_samples = schedule_samples;
      // Full greedy up to full_max_n; sampled candidates beyond it.
      options.sample_candidates = n <= full_max_n ? 0 : sample;
      options.threads = static_cast<std::size_t>(threads);
      double best_ms = 0;
      AdversaryResult result;
      for (int r = 0; r < repeats; ++r) {
        const double t0 = now_ms();
        result = run_adversarial_sequence(base, options);
        const double ms = now_ms() - t0;
        if (r == 0 || ms < best_ms) best_ms = ms;
      }
      // Bit-identical across thread counts, or the reduction is broken.
      if (reference == nullptr) {
        first = result;
        reference = &first;
      } else {
        DCNT_CHECK_MSG(result.steps.size() == reference->steps.size() &&
                           result.max_load == reference->max_load &&
                           result.bottleneck == reference->bottleneck &&
                           result.total_messages == reference->total_messages,
                       "thread count changed the AdversaryResult");
        for (std::size_t i = 0; i < result.steps.size(); ++i) {
          DCNT_CHECK(result.steps[i].chosen == reference->steps[i].chosen &&
                     result.steps[i].messages == reference->steps[i].messages);
        }
      }
      SweepPoint point;
      point.n = static_cast<std::int64_t>(base.num_processors());
      point.sample_candidates = options.sample_candidates;
      point.threads_requested = options.threads;
      point.threads_used = resolve_thread_count(options.threads);
      point.wall_ms = best_ms;
      point.max_load = result.max_load;
      point.paper_k = result.paper_k;
      sweep.push_back(point);
      if (threads == 1) wall_1t = best_ms;
      sweep_table.row()
          .add(point.n)
          .add(point.sample_candidates == 0
                   ? std::string("all")
                   : std::to_string(point.sample_candidates))
          .add(static_cast<std::int64_t>(point.threads_used))
          .add(point.wall_ms, 1)
          .add(wall_1t > 0 ? wall_1t / point.wall_ms : 0.0, 2)
          .add(point.max_load);
    }
  }
  sweep_table.print(std::cout,
                    "PERF-ADV: run_adversarial_sequence wall time vs threads "
                    "(results verified bit-identical)");

  std::FILE* f = std::fopen(out.c_str(), "w");
  DCNT_CHECK_MSG(f != nullptr, "cannot open --out file");
  std::fprintf(f, "{\n  \"bench\": \"adversary_scale\",\n");
  std::fprintf(f, "  \"counter\": \"%s\",\n", to_string(kind).c_str());
  std::fprintf(f, "  \"schedule_samples\": %zu,\n", schedule_samples);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"hardware_threads\": %zu,\n", default_thread_count());
  std::fprintf(f, "  \"snapshot_cost\": [\n");
  for (std::size_t i = 0; i < clone_costs.size(); ++i) {
    const CloneCost& c = clone_costs[i];
    std::fprintf(f,
                 "    {\"n\": %lld, \"clone_us\": %.3f, \"restore_us\": %.3f, "
                 "\"dryrun_us\": %.3f}%s\n",
                 static_cast<long long>(c.n), c.clone_us, c.restore_us,
                 c.dryrun_us, i + 1 < clone_costs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"adversary\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(
        f,
        "    {\"n\": %lld, \"sample_candidates\": %zu, \"threads\": %zu, "
        "\"wall_ms\": %.2f, \"max_load\": %lld, \"paper_k\": %.3f}%s\n",
        static_cast<long long>(p.n), p.sample_candidates, p.threads_used,
        p.wall_ms, static_cast<long long>(p.max_load), p.paper_k,
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
