// PERF-ADV — the adversary's step cost and how it scales with threads.
//
// The §3 adversary dry-runs O(n) candidates per committed op; before
// the snapshot/restore fast path each dry-run paid a full deep clone of
// the Simulator, which kept adversarial sweeps stuck at small n. This
// bench quantifies the three quantities that govern a sweep:
//
//   * clone_us    — a fresh deep copy (the old per-dry-run cost),
//   * restore_us  — re-applying the same state into a warm scratch
//                   simulator (the new per-dry-run cost),
//   * dry-run throughput and run_adversarial_sequence wall time at
//     1/2/4/max threads, asserting the results stay bit-identical.
//
// Emits a JSON baseline (default BENCH_adversary.json; the checked-in
// copy at the repo root is the reference measurement for regression
// comparisons).
//
// Flags: --counter=combining --n_list=64,256,1024 --threads_list=1,2,4,0
//        --full_max_n=256 --sample=64 --schedule_samples=1 --seed=173
//        --repeats=3 --out=BENCH_adversary.json
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/adversary.hpp"
#include "bench_util.hpp"
#include "harness/factory.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace dcnt;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CloneCost {
  std::int64_t n{0};
  double clone_us{0};
  double restore_us{0};
  double dryrun_us{0};  ///< restore + one inc + quiescence, serial
};

CloneCost measure_clone_cost(CounterKind kind, std::int64_t n,
                             std::uint64_t seed) {
  SimConfig cfg;
  cfg.seed = seed;
  Simulator sim(make_counter(kind, n), cfg);
  const auto procs = static_cast<std::int64_t>(sim.num_processors());
  run_sequential(sim, schedule_sequential(procs / 2));  // mid-sweep state

  CloneCost cost;
  cost.n = procs;
  const int reps = 200;
  {
    const double t0 = now_ms();
    for (int r = 0; r < reps; ++r) {
      Simulator clone(sim);
      DCNT_CHECK(clone.ops_started() == sim.ops_started());
    }
    cost.clone_us = (now_ms() - t0) * 1000.0 / reps;
  }
  {
    Simulator scratch(sim);
    const double t0 = now_ms();
    for (int r = 0; r < reps; ++r) {
      scratch.restore(sim);
      DCNT_CHECK(scratch.ops_started() == sim.ops_started());
    }
    cost.restore_us = (now_ms() - t0) * 1000.0 / reps;
  }
  {
    Simulator scratch(sim);
    const double t0 = now_ms();
    for (int r = 0; r < reps; ++r) {
      scratch.restore(sim);
      const OpId op =
          scratch.begin_inc(static_cast<ProcessorId>(r % procs));
      scratch.run_until_quiescent();
      DCNT_CHECK(scratch.result(op).has_value());
    }
    cost.dryrun_us = (now_ms() - t0) * 1000.0 / reps;
  }
  return cost;
}

struct SweepPoint {
  std::int64_t n{0};
  std::size_t sample_candidates{0};
  std::size_t threads_requested{0};
  std::size_t threads_used{0};
  double wall_ms{0};
  std::int64_t max_load{0};
  double paper_k{0};
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "PERF-ADV: adversary/explorer scaling — clone cost, dry-run throughput, thread scaling",
      {"counter", "full_max_n", "n_list", "out", "repeats", "sample", "schedule_samples", "seed", "threads", "threads_list"});
  const CounterKind kind =
      counter_kind_from_string(flags.get_string("counter", "combining"));
  const auto n_list = parse_int_list(flags.get_string("n_list", "64,256,1024"));
  // 0 in threads_list = auto via the shared knob (--threads, then the
  // DCNT_THREADS env, else all hardware threads).
  const auto threads_list =
      parse_int_list(flags.get_string("threads_list", "1,2,4,0"));
  const std::int64_t full_max_n = flags.get_int("full_max_n", 256);
  const auto sample = static_cast<std::size_t>(flags.get_int("sample", 64));
  const auto schedule_samples =
      static_cast<std::size_t>(flags.get_int("schedule_samples", 1));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 173));
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));
  const std::string out = flags.get_string("out", "BENCH_adversary.json");

  Table clone_table({"n", "clone_us", "restore_us", "dryrun_us", "restore/clone"});
  std::vector<CloneCost> clone_costs;
  for (const std::int64_t n : n_list) {
    const CloneCost cost = measure_clone_cost(kind, n, seed);
    clone_costs.push_back(cost);
    clone_table.row()
        .add(cost.n)
        .add(cost.clone_us, 2)
        .add(cost.restore_us, 2)
        .add(cost.dryrun_us, 2)
        .add(cost.restore_us / std::max(cost.clone_us, 1e-9), 2);
  }
  clone_table.print(std::cout,
                    "PERF-ADV: per-snapshot cost (" + to_string(kind) +
                        "); restore() is the adversary's per-dry-run price");

  Table sweep_table(
      {"n", "candidates", "threads", "wall_ms", "speedup_vs_1t", "max_load"});
  std::vector<SweepPoint> sweep;
  for (const std::int64_t n : n_list) {
    double wall_1t = 0;
    const AdversaryResult* reference = nullptr;
    AdversaryResult first;
    for (const std::int64_t threads : threads_list) {
      SimConfig cfg;
      cfg.seed = seed;
      Simulator base(make_counter(kind, n), cfg);
      AdversaryOptions options;
      options.seed = seed;
      options.schedule_samples = schedule_samples;
      // Full greedy up to full_max_n; sampled candidates beyond it.
      options.sample_candidates = n <= full_max_n ? 0 : sample;
      options.threads = threads == 0 ? threads_from_flags(flags)
                                     : static_cast<std::size_t>(threads);
      double best_ms = 0;
      AdversaryResult result;
      for (int r = 0; r < repeats; ++r) {
        const double t0 = now_ms();
        result = run_adversarial_sequence(base, options);
        const double ms = now_ms() - t0;
        if (r == 0 || ms < best_ms) best_ms = ms;
      }
      // Bit-identical across thread counts, or the reduction is broken.
      if (reference == nullptr) {
        first = result;
        reference = &first;
      } else {
        DCNT_CHECK_MSG(result.steps.size() == reference->steps.size() &&
                           result.max_load == reference->max_load &&
                           result.bottleneck == reference->bottleneck &&
                           result.total_messages == reference->total_messages,
                       "thread count changed the AdversaryResult");
        for (std::size_t i = 0; i < result.steps.size(); ++i) {
          DCNT_CHECK(result.steps[i].chosen == reference->steps[i].chosen &&
                     result.steps[i].messages == reference->steps[i].messages);
        }
      }
      SweepPoint point;
      point.n = static_cast<std::int64_t>(base.num_processors());
      point.sample_candidates = options.sample_candidates;
      point.threads_requested = options.threads;
      point.threads_used = resolve_thread_count(options.threads);
      point.wall_ms = best_ms;
      point.max_load = result.max_load;
      point.paper_k = result.paper_k;
      sweep.push_back(point);
      if (threads == 1) wall_1t = best_ms;
      sweep_table.row()
          .add(point.n)
          .add(point.sample_candidates == 0
                   ? std::string("all")
                   : std::to_string(point.sample_candidates))
          .add(static_cast<std::int64_t>(point.threads_used))
          .add(point.wall_ms, 1)
          .add(wall_1t > 0 ? wall_1t / point.wall_ms : 0.0, 2)
          .add(point.max_load);
    }
  }
  sweep_table.print(std::cout,
                    "PERF-ADV: run_adversarial_sequence wall time vs threads "
                    "(results verified bit-identical)");

  JsonWriter json(out);
  json.field("bench", "adversary_scale");
  json.field("counter", to_string(kind));
  json.field("schedule_samples", schedule_samples);
  json.field("seed", seed);
  json.field("hardware_threads", default_thread_count());
  json.begin_array("snapshot_cost");
  for (const CloneCost& c : clone_costs) {
    json.begin_object();
    json.field("n", c.n);
    json.field("clone_us", c.clone_us);
    json.field("restore_us", c.restore_us);
    json.field("dryrun_us", c.dryrun_us);
    json.end_object();
  }
  json.end_array();
  json.begin_array("adversary");
  for (const SweepPoint& p : sweep) {
    json.begin_object();
    json.field("n", p.n);
    json.field("sample_candidates", p.sample_candidates);
    json.field("threads", p.threads_used);
    json.field("wall_ms", p.wall_ms, 2);
    json.field("max_load", p.max_load);
    json.field("paper_k", p.paper_k);
    json.end_object();
  }
  json.end_array();
  return 0;
}
