// LIN — the [HSW96] separation (paper, Related Work): under overlapping
// operations, which counters respect real-time order? A history is
// linearizable for counting iff no operation that finished before
// another started received a larger value.
//
// Driver: staggered invocations with heavy-tailed delays (a few
// deliveries between invocations keep several ops in flight). Expected
// shape: tree / central / combining — zero inversions (a single root
// serializes); counting network and diffracting tree — inversions found
// (they are only quiescently consistent).
//
// Flags: --ops=200 --seeds=30 --seed0=1
#include <iostream>
#include <memory>
#include <functional>

#include "bench_util.hpp"
#include "analysis/linearizability.hpp"
#include "baselines/central.hpp"
#include "baselines/combining_tree.hpp"
#include "baselines/counting_network.hpp"
#include "baselines/diffracting_tree.hpp"
#include "core/tree_counter.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

namespace {

LinearizabilityReport staggered_run(std::unique_ptr<CounterProtocol> counter,
                                    std::uint64_t seed, std::int64_t ops) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.delay = DelayModel::heavy_tail(1, 400);
  Simulator sim(std::move(counter), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  Rng rng(seed * 31 + 7);
  for (std::int64_t i = 0; i < ops; ++i) {
    sim.begin_inc(static_cast<ProcessorId>(i % n));
    const auto steps = rng.next_below(12);
    for (std::uint64_t s = 0; s < steps; ++s) {
      if (!sim.step()) break;
    }
  }
  sim.run_until_quiescent();
  return check_linearizable(counter_history(sim));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "LIN: linearizability vs counting under overlapping ops",
      {"ops", "seeds"});
  const std::int64_t ops = flags.get_int("ops", 200);
  const std::int64_t seeds = flags.get_int("seeds", 30);
  const auto seed0 = static_cast<std::uint64_t>(flags.get_int("seed0", 1));

  // Narrow balancer structures (width 4): wide ones dilute contention
  // at the output cells so inversions become vanishingly rare — the
  // separation is about the mechanism, not the width.
  struct Entry {
    std::string label;
    std::function<std::unique_ptr<CounterProtocol>()> make;
  };
  std::vector<Entry> entries;
  entries.push_back({"tree(k=3)", [] {
                       TreeCounterParams p;
                       p.k = 3;
                       return std::make_unique<TreeCounter>(p);
                     }});
  entries.push_back(
      {"central", [] { return std::make_unique<CentralCounter>(64); }});
  entries.push_back({"combining(f=2)", [] {
                       CombiningTreeParams p;
                       p.n = 64;
                       return std::make_unique<CombiningTreeCounter>(p);
                     }});
  entries.push_back({"counting-net(w=4)", [] {
                       CountingNetworkParams p;
                       p.n = 32;
                       p.width = 4;
                       return std::make_unique<CountingNetworkCounter>(p);
                     }});
  entries.push_back({"diffracting(w=4)", [] {
                       DiffractingTreeParams p;
                       p.n = 32;
                       p.width = 4;
                       return std::make_unique<DiffractingTreeCounter>(p);
                     }});

  Table table({"counter", "seeds with inversions", "total inversions",
               "linearizable?"});
  for (const Entry& entry : entries) {
    std::int64_t bad_seeds = 0;
    std::int64_t total = 0;
    for (std::int64_t s = 0; s < seeds; ++s) {
      const auto report = staggered_run(
          entry.make(), seed0 + static_cast<std::uint64_t>(s), ops);
      if (!report.linearizable) ++bad_seeds;
      total += report.violations;
    }
    table.row()
        .add(entry.label)
        .add(std::to_string(bad_seeds) + "/" + std::to_string(seeds))
        .add(total)
        .add(total == 0 ? "yes (observed)" : "NO");
  }
  table.print(std::cout,
              "LIN: real-time inversions under staggered concurrency "
              "([HSW96] separation)");
  std::cout << "\nshape: serializing designs (tree, static-tree, central, "
               "combining) show zero inversions;\nbalancer-based designs "
               "(counting network, diffracting tree) are only quiescently "
               "consistent.\n";
  return 0;
}
