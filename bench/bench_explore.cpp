// VERIFY — schedule-space model checking coverage. The §2 model allows
// any delivery order; this binary reports how much of that
// nondeterminism the explorer certifies on small instances (every
// explored path checks values 0..m-1 + protocol invariants; a single
// violation aborts the run — so completing the table IS the result).
//
// Flags: --max_paths=200000
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "analysis/explore.hpp"
#include "baselines/central.hpp"
#include "baselines/counting_network.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "VERIFY: schedule-space model-checking coverage",
      {"max_paths"});
  ExploreOptions options;
  options.max_paths = flags.get_int("max_paths", 200000);

  Table table({"scenario", "paths", "exhaustive", "max depth",
               "distinct outcomes"});
  auto add_row = [&](const std::string& label, const ExploreResult& result) {
    table.row()
        .add(label)
        .add(result.paths)
        .add(result.truncated ? "no (cap)" : "YES")
        .add(result.max_depth)
        .add(result.distinct_outcomes);
  };

  {
    Simulator base(std::make_unique<CentralCounter>(5), {});
    add_row("central, 3 concurrent incs",
            explore_schedules(base, {1, 2, 3}, options));
  }
  {
    Simulator base(std::make_unique<CentralCounter>(6), {});
    add_row("central, 4 concurrent incs",
            explore_schedules(base, {1, 2, 3, 4}, options));
  }
  {
    TreeCounterParams params;
    params.k = 2;
    Simulator base(std::make_unique<TreeCounter>(params), {});
    add_row("tree k=2, 2 concurrent incs",
            explore_schedules(base, {0, 7}, options));
  }
  {
    TreeCounterParams params;
    params.k = 2;
    Simulator base(std::make_unique<TreeCounter>(params), {});
    add_row("tree k=2, 3 concurrent incs",
            explore_schedules(base, {0, 3, 6}, options));
  }
  {
    // Retirement cascade: warm so the explored inc crosses the age
    // threshold mid-flight.
    TreeCounterParams params;
    params.k = 2;
    params.age_threshold = 6;
    Simulator base(std::make_unique<TreeCounter>(params), {});
    run_sequential(base, {0, 1});
    add_row("tree k=2, inc triggering retirement cascade",
            explore_schedules(base, {2}, options));
  }
  {
    CountingNetworkParams params;
    params.n = 4;
    params.width = 4;
    Simulator base(std::make_unique<CountingNetworkCounter>(params), {});
    add_row("bitonic w=4, 3 concurrent tokens",
            explore_schedules(base, {0, 1, 2}, options));
  }
  {
    CountingNetworkParams params;
    params.n = 4;
    params.width = 2;
    params.kind = NetworkKind::kPeriodic;
    Simulator base(std::make_unique<CountingNetworkCounter>(params), {});
    add_row("periodic w=2, 3 concurrent tokens",
            explore_schedules(base, {0, 1, 2}, options));
  }

  table.print(std::cout,
              "VERIFY: exhaustive (or cap-bounded) delivery-schedule "
              "exploration; every path checked values 0..m-1 and protocol "
              "invariants");
  std::cout << "\nno violations on any explored path — asynchrony (§2) "
               "handled for every enumerated order.\n";
  return 0;
}
