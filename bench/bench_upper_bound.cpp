// THM-UB — the Bottleneck Theorem (§4): "During the entire sequence of
// n inc operations each processor receives and sends at most O(k)
// messages, where k*k^k = n."
//
// We run the paper's exact workload (one inc per processor, sequential)
// on the communication-tree counter for k = 2..6 (n = 8 .. 279,936) and
// report the bottleneck load, its ratio to k, and a linear fit of
// max-load against k. The paper predicts the ratio column converges to
// a constant; a Theta(n) counter would blow it up by orders of
// magnitude (see bench_baselines for that contrast).
//
// Flags: --kmax=6 --seed=1 --delay_max=8 --order=seq|random
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "analysis/audit.hpp"
#include "analysis/report.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "THM-UB: the Bottleneck Theorem — max load vs k on the tree counter",
      {"delay_max", "kmax", "order", "seed"});
  const int kmax = static_cast<int>(flags.get_int("kmax", 6));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const SimTime delay_max = flags.get_int("delay_max", 8);
  const std::string order_kind = flags.get_string("order", "seq");

  Table table({"k", "n", "max_load", "max/k", "mean_load", "p99", "total_msgs",
               "retirements", "pool_wraps"});
  std::vector<double> ks;
  std::vector<double> loads;

  for (int k = 2; k <= kmax; ++k) {
    TreeCounterParams params;
    params.k = k;
    SimConfig cfg;
    cfg.seed = seed;
    cfg.delay = DelayModel::uniform(1, delay_max);
    Simulator sim(std::make_unique<TreeCounter>(params), cfg);
    const auto n = static_cast<std::int64_t>(sim.num_processors());
    Rng rng(seed + static_cast<std::uint64_t>(k));
    const auto order = order_kind == "random" ? schedule_permutation(n, rng)
                                              : schedule_sequential(n);
    run_sequential(sim, order);
    const LoadReport report = make_load_report(sim);
    const auto& tc = dynamic_cast<const TreeCounter&>(sim.counter());
    table.row()
        .add(k)
        .add(n)
        .add(report.max_load)
        .add(report.load_per_k, 2)
        .add(report.mean_load, 2)
        .add(report.p99)
        .add(report.total_messages)
        .add(tc.stats().retirements_total)
        .add(tc.stats().pool_wraps);
    ks.push_back(static_cast<double>(k));
    loads.push_back(static_cast<double>(report.max_load));
  }

  table.print(std::cout,
              "THM-UB: tree counter bottleneck vs k (paper: O(k), k^(k+1)=n)");
  if (ks.size() >= 2) {
    const LinearFit fit = fit_linear(ks, loads);
    std::printf(
        "\nlinear fit: max_load ~= %.1f + %.1f * k   (r^2 = %.4f)\n"
        "paper predicts: linear in k with n growing %.0fx across rows\n",
        fit.intercept, fit.slope, fit.r2, loads.empty() ? 0.0 : 279936.0 / 8);
  }
  return 0;
}
