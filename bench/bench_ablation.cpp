// ABL-THRESH / ABL-FANOUT — design-choice ablations for the paper's
// counter (DESIGN.md §6).
//
// 1. Retirement age threshold. The paper retires at Theta(k). We sweep
//    the threshold from the minimal *stable* value k+2 (thresholds
//    <= k+1 diverge: each retirement ages k+1 neighbours by 1, so the
//    cascade's reproduction factor (k+1)/T reaches 1 — a "retirement
//    storm") through 2k, 4k (our default), 8k, and infinity (the
//    static tree). Small thresholds buy nothing and wrap pools; huge
//    thresholds collapse to the Theta(n) hot spot. The sweet spot is
//    Theta(k), as the paper chose.
//
// 2. Fan-out at fixed n. The paper couples fan-out and depth through
//    k^(k+1) = n. We build trees with fan-out f != k over the same
//    processor count (rounding n as needed) to show k is the right
//    balance between path length (messages per op ~ depth) and
//    per-node traffic (~ fan-out).
//
// 3. Handover-in-age accounting variant.
//
// Flags: --k=4 --seed=3
#include <iostream>
#include <limits>

#include "bench_util.hpp"
#include "analysis/report.hpp"
#include "baselines/combining_tree.hpp"
#include "core/bound.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include <algorithm>
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

namespace {

LoadReport run_tree(TreeCounterParams params, std::uint64_t seed,
                    TreeCounterStats* stats_out) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.delay = DelayModel::uniform(1, 8);
  Simulator sim(std::make_unique<TreeCounter>(params), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  run_sequential(sim, schedule_sequential(n));
  if (stats_out != nullptr) {
    *stats_out = dynamic_cast<const TreeCounter&>(sim.counter()).stats();
  }
  return make_load_report(sim);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "ABL-THRESH / ABL-FANOUT: tree design-choice ablations (retirement threshold, fanout)",
      {"k", "seed"});
  const int k = static_cast<int>(flags.get_int("k", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  {
    Table table({"threshold", "max_load", "mean_load", "total_msgs",
                 "retirements", "pool_wraps"});
    std::vector<std::pair<std::string, std::int64_t>> thresholds = {
        {"k+2 (min stable)", k + 2},
        {"2k (paper)", 2 * k},
        {"4k (default)", 4 * k},
        {"8k", 8 * k},
        {"16k", 16 * k},
        {"inf (static)", std::numeric_limits<std::int64_t>::max()},
    };
    for (const auto& [label, threshold] : thresholds) {
      TreeCounterParams params;
      params.k = k;
      params.age_threshold = threshold;
      TreeCounterStats stats;
      const LoadReport report = run_tree(params, seed, &stats);
      table.row()
          .add(label)
          .add(report.max_load)
          .add(report.mean_load, 2)
          .add(report.total_messages)
          .add(stats.retirements_total)
          .add(stats.pool_wraps);
    }
    table.print(std::cout,
                "ABL-THRESH: retirement age threshold at k=" +
                    std::to_string(k) +
                    " (n=" + std::to_string(tree_size_for_k(k)) +
                    "); thresholds <= k+1 diverge and are omitted");
  }

  {
    // Fan-out sweep near the paper's optimum: same (order of) n, vary f.
    Table table({"fanout f", "n (=f^(f+1) rounded)", "depth", "max_load",
                 "mean_load", "max/k(n)"});
    for (int f = 2; f <= 6; ++f) {
      TreeCounterParams params;
      params.k = f;
      TreeCounterStats stats;
      const LoadReport report = run_tree(params, seed, &stats);
      table.row()
          .add(f)
          .add(report.n)
          .add(f + 1)
          .add(report.max_load)
          .add(report.mean_load, 2)
          .add(report.load_per_k, 2);
    }
    table.print(std::cout,
                "ABL-FANOUT: the paper's coupling f = k(n) keeps max/k(n) "
                "constant across scales — fan-out is not a free parameter "
                "but the solution of f^(f+1) = n");
  }

  {
    Table table({"variant", "max_load", "retirements", "total_msgs"});
    for (const bool in_age : {false, true}) {
      TreeCounterParams params;
      params.k = k;
      params.count_handover_in_age = in_age;
      TreeCounterStats stats;
      const LoadReport report = run_tree(params, seed, &stats);
      table.row()
          .add(in_age ? "handover ages successor" : "handover free (paper)")
          .add(report.max_load)
          .add(stats.retirements_total)
          .add(report.total_messages);
    }
    table.print(std::cout, "ABL: handover accounting variant at k=" +
                               std::to_string(k));
  }

  {
    // Combining-window ablation (combining tree, concurrent batch):
    // window 0 only merges requests stuck behind an in-flight one —
    // with fan-in 2 and a one-shot workload that never happens, so the
    // root still sees ~n requests. A short window collapses the batch.
    const std::int64_t n = 256;
    Table table({"window", "combined (merged)", "root-ish max_load",
                 "total_msgs", "drain time"});
    for (const SimTime window : {0, 2, 8, 32, 128}) {
      CombiningTreeParams params;
      params.n = n;
      params.fanout = 2;
      params.window = window;
      SimConfig cfg;
      cfg.seed = seed;
      cfg.delay = DelayModel::uniform(1, 8);
      Simulator sim(std::make_unique<CombiningTreeCounter>(params), cfg);
      run_concurrent(sim, make_batches(schedule_sequential(n),
                                       static_cast<std::size_t>(n)));
      const auto& tree =
          dynamic_cast<const CombiningTreeCounter&>(sim.counter());
      SimTime drain = 0;
      for (OpId op = 0; op < static_cast<OpId>(sim.ops_completed()); ++op) {
        drain = std::max(drain, sim.op_responded_at(op));
      }
      table.row()
          .add(static_cast<std::int64_t>(window))
          .add(tree.combined_requests())
          .add(sim.metrics().load(tree.node_pid(tree.root_node())))
          .add(sim.metrics().total_messages())
          .add(static_cast<std::int64_t>(drain));
    }
    table.print(std::cout,
                "ABL-WINDOW: combining window under one concurrent batch "
                "(n=256, fan-in 2) — merging trades latency for root "
                "relief");
  }
  return 0;
}
