// SKEW — §3's preliminary remark: "One can easily show that the amount
// of achievable distribution is limited if many operations are
// initiated by a single processor." The lower bound is therefore proved
// for the one-inc-per-processor workload; this bench quantifies the
// remark by sweeping initiator skew on the tree counter.
//
// Workloads over n = k^(k+1) processors, m = n operations:
//   one-per-processor (the paper's), uniform random initiators,
//   Zipf(0.5), Zipf(1.0), and single-origin. As skew rises, the
//   initiator's own 2 messages/op dominate and the bottleneck converges
//   to Theta(m) no matter how well the counter distributes its
//   internals.
//
// Flags: --k=4 --seed=11
#include <iostream>

#include "bench_util.hpp"
#include "analysis/report.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "SKEW: asymmetric delays against the bottleneck claim",
      {"k", "seed"});
  const int k = static_cast<int>(flags.get_int("k", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));

  TreeCounterParams params;
  params.k = k;

  struct Workload {
    std::string name;
    std::vector<ProcessorId> order;
  };
  std::vector<Workload> workloads;
  {
    Simulator probe(std::make_unique<TreeCounter>(params), {});
    const auto n = static_cast<std::int64_t>(probe.num_processors());
    Rng rng(seed);
    workloads.push_back({"one-per-processor (paper)", schedule_sequential(n)});
    workloads.push_back({"uniform random", schedule_uniform(n, n, rng)});
    workloads.push_back({"zipf(0.5)", schedule_zipf(n, n, 0.5, rng)});
    workloads.push_back({"zipf(1.0)", schedule_zipf(n, n, 1.0, rng)});
    workloads.push_back({"single origin", schedule_single_origin(0, n)});
  }

  Table table({"workload", "ops", "max_load", "bottleneck proc",
               "origin0 load", "mean_load"});
  for (const auto& workload : workloads) {
    SimConfig cfg;
    cfg.seed = seed;
    cfg.delay = DelayModel::uniform(1, 8);
    Simulator sim(std::make_unique<TreeCounter>(params), cfg);
    run_sequential(sim, workload.order);
    const LoadReport report = make_load_report(sim);
    table.row()
        .add(workload.name)
        .add(static_cast<std::int64_t>(workload.order.size()))
        .add(report.max_load)
        .add(static_cast<std::int64_t>(report.bottleneck))
        .add(sim.metrics().load(0))
        .add(report.mean_load, 2);
  }
  table.print(std::cout,
              "SKEW: initiator skew vs bottleneck on the tree counter "
              "(paper §3: skew inherently limits distribution)");
  return 0;
}
