// KEYS — counter-as-a-service: the multi-key fabric (service/) over the
// threaded runtime and the socket cluster.
//
// The paper's bound is per counter: a single exact counter has a
// processor carrying m_p >= Omega(k) messages, no matter how it is
// implemented. The fabric multiplexes `keys` independent counters over
// one processor set, rotating each key's instance so distinct keys pin
// their bottleneck on distinct processors. This bench measures both
// halves of that claim at once:
//
//   - aggregate inc/s grows with the worker/shard count at large
//     keyspaces (the fabric scales),
//   - the hottest key's per-key max_p stays within a small constant
//     factor of the same counter run with keys=1 at equal ops — no
//     amount of keyspace sharding relaxes the per-key Omega(k) price.
//
// Every row verifies the per-key contract internally (each key's
// returned values are an exact permutation of 0..ops_k-1), so a row
// completing is itself a correctness check. The `inproc-lru` row caps
// the directory so the LRU cold tier does real work (evict to durable
// value, rehydrate on next touch); its counters are reported. The tcp
// rows run the real 4-process cluster with batched keyed Starts
// (kStartBatch) and coalesced completions (kCompleteBatch).
//
//   $ bench_keys [--counter=central] [--n=16] [--keys_list=1,1000,100000]
//                [--key_skews=0,0.99] [--workers_list=1,4] [--ops=0]
//                [--key_capacity=0] [--concurrency=16] [--warmup=64]
//                [--nodes=4] [--cluster_keys=256] [--batch=16] [--seed=7]
//                [--open_rate=0] [--shape=constant] [--slo_us=0]
//                [--quick] [--out=BENCH_keys.json]
//
// With --open_rate > 0 (on by default under --quick) an "inproc-open"
// row drives the fabric open-loop on the deterministic arrival
// timeline, with latency measured from scheduled arrival and SLO
// attainment at --slo_us — plus a "tcp-open" row doing the same against
// the real socket cluster (keyed Starts paced per op; the controller
// forces batch=1 in the open loop, so queueing in the mesh counts
// against the tail, coordinated-omission-free).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/cluster.hpp"
#include "harness/factory.hpp"
#include "harness/throughput.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

namespace {

struct KeyRow {
  std::string mode;  ///< "inproc", "inproc-lru", "tcp"
  std::size_t keys{1};
  std::string key_dist;
  double key_skew{0.0};
  std::size_t parallelism{0};  ///< workers (inproc) or nodes (tcp)
  std::size_t batch{1};        ///< tcp rows: schedule entries per frame
  std::size_t ops{0};
  std::size_t key_capacity{0};
  double ops_per_sec{0.0};
  double p50_us{0.0};
  double p99_us{0.0};
  /// Open-loop rows ("inproc-open"): offered rate, deep tail and SLO
  /// attainment with latency measured from scheduled arrival.
  double rate{0.0};
  double p999_us{0.0};
  double max_us{0.0};
  double slo_attainment{0.0};
  bool hdr_recorder{false};
  std::int64_t total_messages{0};
  std::int64_t max_load{0};
  std::int64_t hot_key{-1};
  std::int64_t hot_key_ops{0};
  std::int64_t hot_key_max_load{0};
  /// The normalized per-key bottleneck: the hot key's max_p divided by
  /// its op count. The paper's claim is that this stays Omega(1) per op
  /// (a constant for central) regardless of how many other keys share
  /// the fabric.
  double hot_key_load_per_op{0.0};
  std::size_t keys_touched{0};
  std::size_t live_instances{0};
  std::int64_t lru_hits{0};
  std::int64_t lru_misses{0};
  std::int64_t lru_evicts{0};
  std::int64_t lru_rehydrates{0};
  std::int64_t wire_msgs{0};
};

KeyRow from_keyed_throughput(const KeyedThroughputResult& r,
                             const std::string& key_dist, double skew,
                             std::size_t capacity, const std::string& mode) {
  KeyRow row;
  row.mode = mode;
  row.keys = r.keys;
  row.key_dist = key_dist;
  row.key_skew = skew;
  row.parallelism = r.base.workers;
  row.ops = r.base.ops;
  row.key_capacity = capacity;
  row.ops_per_sec = r.base.ops_per_sec;
  row.p50_us = r.base.p50_us;
  row.p99_us = r.base.p99_us;
  row.p999_us = r.base.p999_us;
  row.max_us = r.base.max_us;
  row.slo_attainment = r.base.slo_attainment;
  row.hdr_recorder = r.base.hdr_recorder;
  row.total_messages = r.base.total_messages;
  row.max_load = r.base.max_load;
  row.hot_key = r.hot_key;
  row.hot_key_ops = r.hot_key_ops;
  row.hot_key_max_load = r.hot_key_max_load;
  if (r.hot_key_ops > 0) {
    row.hot_key_load_per_op = static_cast<double>(r.hot_key_max_load) /
                              static_cast<double>(r.hot_key_ops);
  }
  row.keys_touched = r.keys_touched;
  row.live_instances = r.live_instances;
  row.lru_hits = r.lru_hits;
  row.lru_misses = r.lru_misses;
  row.lru_evicts = r.lru_evicts;
  row.lru_rehydrates = r.lru_rehydrates;
  return row;
}

KeyRow from_cluster(const net::ClusterResult& r, const std::string& key_dist,
                    double skew, std::size_t batch, std::size_t capacity) {
  KeyRow row;
  row.mode = "tcp";
  row.keys = r.keys;
  row.key_dist = key_dist;
  row.key_skew = skew;
  row.parallelism = r.nodes;
  row.batch = batch;
  row.ops = r.ops;
  row.key_capacity = capacity;
  row.ops_per_sec = r.ops_per_sec;
  row.p50_us = r.p50_us;
  row.p99_us = r.p99_us;
  row.p999_us = r.p999_us;
  row.max_us = r.max_us;
  row.slo_attainment = r.slo_attainment;
  row.hdr_recorder = r.hdr_recorder;
  row.total_messages = r.total_messages;
  row.max_load = r.max_load;
  row.hot_key = r.hot_key;
  row.hot_key_ops = r.hot_key_ops;
  row.hot_key_max_load = r.hot_key_max_load;
  if (r.hot_key_ops > 0) {
    row.hot_key_load_per_op = static_cast<double>(r.hot_key_max_load) /
                              static_cast<double>(r.hot_key_ops);
  }
  row.keys_touched = r.keys_touched;
  row.lru_hits = r.lru_hits;
  row.lru_misses = r.lru_misses;
  row.lru_evicts = r.lru_evicts;
  row.lru_rehydrates = r.lru_rehydrates;
  row.wire_msgs = r.wire_msgs_sent;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "KEYS: multi-key counter fabric — aggregate inc/s scales with shards "
      "while every key keeps paying the per-key bottleneck",
      {"batch", "cluster_keys", "concurrency", "counter", "key_capacity",
       "key_skews", "keys_list", "n", "nodes", "open_rate", "ops", "out",
       "quick", "seed", "shape", "slo_us", "warmup", "workers_list"});
  const bool quick = flags.get_bool("quick", false);
  const std::string counter = flags.get_string("counter", "central");
  const std::int64_t n = flags.get_int("n", quick ? 8 : 16);
  auto keys_list =
      parse_int_list(flags.get_string("keys_list", quick ? "1,64" : "1,1000,100000"));
  auto key_skews =
      parse_double_list(flags.get_string("key_skews", quick ? "0.99" : "0,0.99"));
  auto workers_list =
      parse_int_list(flags.get_string("workers_list", quick ? "2" : "1,4"));
  const std::int64_t ops_flag = flags.get_int("ops", 0);
  const auto key_capacity =
      static_cast<std::size_t>(flags.get_int("key_capacity", 0));
  const auto concurrency =
      static_cast<std::size_t>(flags.get_int("concurrency", 16));
  const auto warmup =
      static_cast<std::size_t>(flags.get_int("warmup", quick ? 16 : 64));
  const auto nodes =
      static_cast<std::uint32_t>(flags.get_int("nodes", quick ? 2 : 4));
  const auto cluster_keys =
      static_cast<std::size_t>(flags.get_int("cluster_keys", quick ? 16 : 256));
  const auto batch = static_cast<std::size_t>(flags.get_int("batch", 16));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  // Open-loop keyed row: the traffic engine against the fabric, latency
  // from scheduled arrival. --quick keeps it in the smoke path.
  const double open_rate =
      flags.get_double("open_rate", quick ? 20000.0 : 0.0);
  const std::string shape = flags.get_string("shape", "constant");
  const double slo_us = flags.get_double("slo_us", quick ? 1000.0 : 0.0);
  const std::string out = flags.get_string("out", "BENCH_keys.json");

  const CounterKind kind = counter_kind_from_string(counter);
  const std::size_t procs = make_counter(kind, n)->num_processors();
  // Ops per row: enough to touch a large keyspace several times over,
  // bounded so the 100k-key row stays seconds, not minutes.
  const auto ops_for = [&](std::size_t keys) {
    if (ops_flag > 0) return static_cast<std::size_t>(ops_flag);
    const std::size_t floor_ops = (quick ? 4 : 16) * procs;
    const std::size_t by_keys = std::min<std::size_t>(4 * keys, 200000);
    return std::max(floor_ops, by_keys);
  };
  const auto dist_for = [](double skew) {
    return skew > 0.0 ? std::string("zipf") : std::string("uniform");
  };

  std::vector<KeyRow> rows;
  for (const std::int64_t keys64 : keys_list) {
    const auto keys = static_cast<std::size_t>(keys64 > 0 ? keys64 : 1);
    for (const double skew : key_skews) {
      for (const std::int64_t w : workers_list) {
        ThroughputOptions topt;
        topt.workers = static_cast<std::size_t>(w > 0 ? w : 1);
        topt.ops = ops_for(keys);
        topt.concurrency = concurrency;
        topt.warmup = warmup;
        topt.seed = seed;
        // active_shards stays adaptive (min(workers, cores)) like the
        // other wall-clock benches: on a small host W > 1 degrades
        // gracefully instead of paying forced cross-shard hops; the
        // keyed tests pin it instead.
        KeyedOptions kopt;
        kopt.keys = keys;
        kopt.key_dist = dist_for(skew);
        kopt.key_skew = skew;
        kopt.key_capacity = key_capacity;
        rows.push_back(from_keyed_throughput(
            run_keyed_throughput(make_counter(kind, n), topt, kopt),
            kopt.key_dist, skew, key_capacity, "inproc"));
      }
    }
  }

  // LRU cold tier at work: cap the directory well below the largest
  // keyspace so the skewed stream keeps evicting cold keys to their
  // durable values and rehydrating them on the next touch.
  {
    const auto keys =
        static_cast<std::size_t>(*std::max_element(keys_list.begin(), keys_list.end()));
    if (keys > 1) {
      const double skew = key_skews.back();
      const std::size_t capacity = std::max<std::size_t>(16, keys / 8);
      ThroughputOptions topt;
      topt.workers =
          static_cast<std::size_t>(workers_list.back() > 0 ? workers_list.back() : 1);
      topt.ops = ops_for(keys);
      topt.concurrency = concurrency;
      topt.warmup = warmup;
      topt.seed = seed;
      KeyedOptions kopt;
      kopt.keys = keys;
      kopt.key_dist = dist_for(skew);
      kopt.key_skew = skew;
      kopt.key_capacity = capacity;
      rows.push_back(from_keyed_throughput(
          run_keyed_throughput(make_counter(kind, n), topt, kopt),
          kopt.key_dist, skew, capacity, "inproc-lru"));
    }
  }

  // Open-loop keyed row: the fabric under offered load at the largest
  // swept keyspace, tails measured from scheduled arrival.
  if (open_rate > 0.0) {
    const auto keys = static_cast<std::size_t>(
        *std::max_element(keys_list.begin(), keys_list.end()));
    const double skew = key_skews.back();
    ThroughputOptions topt;
    topt.workers = static_cast<std::size_t>(
        workers_list.back() > 0 ? workers_list.back() : 1);
    topt.ops = ops_for(keys);
    topt.warmup = warmup;
    topt.seed = seed;
    topt.open_rate = open_rate;
    topt.shape = shape;
    topt.slo_us = slo_us;
    KeyedOptions kopt;
    kopt.keys = keys;
    kopt.key_dist = dist_for(skew);
    kopt.key_skew = skew;
    KeyRow row = from_keyed_throughput(
        run_keyed_throughput(make_counter(kind, n), topt, kopt),
        kopt.key_dist, skew, 0, "inproc-open");
    row.rate = open_rate;
    rows.push_back(row);
  }

  // The real cluster: batched keyed Starts out, coalesced completions
  // back, per-key values verified as exact permutations across 4
  // processes, per-key loads merged from chunked kKeyedStats reports.
  std::vector<std::size_t> cluster_batches{1};
  if (batch > 1) cluster_batches.push_back(batch);
  std::vector<std::size_t> cluster_keyspaces{1};
  if (cluster_keys > 1) cluster_keyspaces.push_back(cluster_keys);
  for (const std::size_t b : cluster_batches) {
    for (const std::size_t keys : cluster_keyspaces) {
      if (b == 1 && keys == 1) continue;  // covered by the batch sweep
      net::ClusterOptions copt;
      copt.counter = counter;
      copt.min_processors = n;
      copt.nodes = nodes;
      copt.ops = std::min<std::size_t>(std::max<std::size_t>(4 * keys, 256),
                                       quick ? 256 : 2048);
      copt.concurrency = 8;
      copt.warmup = warmup;
      copt.seed = seed;
      copt.keys = keys;
      copt.key_dist = "zipf";
      copt.key_skew = 0.99;
      copt.batch = b;
      rows.push_back(
          from_cluster(net::run_cluster(copt), "zipf", 0.99, b, 0));
    }
  }

  // Open-loop keyed row on the real cluster: same arrival timeline as
  // the inproc-open row, but the Starts cross actual sockets. Batch is
  // forced to 1 by the controller (pacing is per op), so the comparison
  // against the batched closed-loop tcp rows prices what coalescing
  // buys and what open-loop pacing costs.
  if (open_rate > 0.0) {
    net::ClusterOptions copt;
    copt.counter = counter;
    copt.min_processors = n;
    copt.nodes = nodes;
    copt.ops = quick ? 256 : 2048;
    copt.warmup = warmup;
    copt.seed = seed;
    copt.keys = cluster_keys;
    copt.key_dist = "zipf";
    copt.key_skew = 0.99;
    copt.open_rate = open_rate;
    copt.shape = shape;
    copt.slo_us = slo_us;
    KeyRow row = from_cluster(net::run_cluster(copt), "zipf", 0.99, 1, 0);
    row.mode = "tcp-open";
    row.rate = open_rate;
    rows.push_back(row);
  }

  Table table({"mode", "keys", "dist", "par", "batch", "ops", "cap", "inc/s",
               "p99_us", "max_load", "hot_ops", "hk_max", "hk/op", "touched",
               "evict", "rehyd"});
  for (const KeyRow& r : rows) {
    table.row()
        .add(r.mode)
        .add(static_cast<std::int64_t>(r.keys))
        .add(r.key_dist)
        .add(static_cast<std::int64_t>(r.parallelism))
        .add(static_cast<std::int64_t>(r.batch))
        .add(static_cast<std::int64_t>(r.ops))
        .add(static_cast<std::int64_t>(r.key_capacity))
        .add(r.ops_per_sec, 0)
        .add(r.p99_us, 1)
        .add(r.max_load)
        .add(r.hot_key_ops)
        .add(r.hot_key_max_load)
        .add(r.hot_key_load_per_op, 2)
        .add(static_cast<std::int64_t>(r.keys_touched))
        .add(r.lru_evicts)
        .add(r.lru_rehydrates);
  }
  table.print(std::cout,
              "KEYS: multi-key fabric — aggregate scales, every key still "
              "pays its own bottleneck (all rows verified per key)");

  JsonWriter json(out);
  json.field("bench", "keys");
  json.field("counter", counter);
  json.field("n", n);
  json.field("concurrency", concurrency);
  json.field("warmup", warmup);
  json.field("nodes", nodes);
  json.field("batch", batch);
  json.field("seed", seed);
  json.begin_array("runs");
  for (const KeyRow& r : rows) {
    json.begin_object();
    json.field("mode", r.mode);
    json.field("keys", r.keys);
    json.field("key_dist", r.key_dist);
    json.field("key_skew", r.key_skew, 2);
    json.field("parallelism", r.parallelism);
    json.field("batch", r.batch);
    json.field("ops", r.ops);
    json.field("key_capacity", r.key_capacity);
    json.field("ops_per_sec", r.ops_per_sec, 1);
    json.field("p50_us", r.p50_us, 2);
    json.field("p99_us", r.p99_us, 2);
    if (r.mode == "inproc-open" || r.mode == "tcp-open") {
      json.field("rate", r.rate, 1);
      json.field("shape", shape);
      json.field("p999_us", r.p999_us, 2);
      json.field("max_us", r.max_us, 2);
      json.field("slo_us", slo_us, 1);
      json.field("slo_attainment", r.slo_attainment, 6);
      json.field("hdr_recorder", r.hdr_recorder ? 1 : 0);
    }
    json.field("total_messages", r.total_messages);
    json.field("max_load", r.max_load);
    json.field("hot_key", r.hot_key);
    json.field("hot_key_ops", r.hot_key_ops);
    json.field("hot_key_max_load", r.hot_key_max_load);
    json.field("hot_key_load_per_op", r.hot_key_load_per_op, 3);
    json.field("keys_touched", r.keys_touched);
    json.field("live_instances", r.live_instances);
    json.field("lru_hits", r.lru_hits);
    json.field("lru_misses", r.lru_misses);
    json.field("lru_evicts", r.lru_evicts);
    json.field("lru_rehydrates", r.lru_rehydrates);
    json.field("wire_msgs", r.wire_msgs);
    json.end_object();
  }
  json.end_array();
  return 0;
}
