// FAULT — the bottleneck under an unfriendly network (DESIGN.md §8).
//
// The Bottleneck Theorem's O(k) is a statement about the protocol, not
// about a benign network. Message loss forces retransmissions and
// crash-stops force promotions, but both multiply per-channel traffic
// by a constant factor, so the bottleneck must stay Theta(k). Two
// sweeps over the paper's workload (one inc per live processor):
//
//   * drop sweep — reliable(tree(k)) under iid drop probability p:
//     max_load, max/k and the retransmission overhead vs p. The max/k
//     column must stay flat in k at every p (constant inflation in p,
//     no blow-up in n).
//   * crash sweep — the self-healing tree (journalled root + reliable
//     transport) with c incumbent crash-stops mid-sequence plus a
//     little background loss. Incumbents are pinned (age_threshold
//     effectively infinite) so the victims are known a priori; that
//     makes the root the bottleneck by construction, so the claim here
//     is relative: every inc still returns distinct consecutive values
//     (run_sequential aborts otherwise) and max_load stays within a
//     small constant factor of the same configuration's c=0 row while
//     crash_handovers counts the promotions.
//
// Emits a JSON baseline (default BENCH_faults.json; the checked-in copy
// at the repo root is the reference measurement).
//
// Flags: --k_list=2,3,4 --crash_k_list=2,3 --drops=0,0.02,0.05,0.1,0.2
//        --crash_list=0,1,2 --crash_drop=0.01 --ops_factor=1 --seed=97
//        --out=BENCH_faults.json
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "core/tree_counter.hpp"
#include "core/tree_layout.hpp"
#include "faults/retry.hpp"
#include "harness/runner.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

namespace {

/// One inc per live processor, round-robin, skipping the given pids.
std::vector<ProcessorId> live_order(std::int64_t n, std::int64_t ops,
                                    const std::vector<ProcessorId>& skip) {
  std::vector<ProcessorId> order;
  ProcessorId p = 0;
  while (static_cast<std::int64_t>(order.size()) < ops) {
    if (std::find(skip.begin(), skip.end(), p) == skip.end())
      order.push_back(p);
    p = static_cast<ProcessorId>((p + 1) % n);
  }
  return order;
}

struct DropPoint {
  int k{0};
  std::int64_t n{0};
  double drop{0.0};
  std::int64_t max_load{0};
  double load_per_k{0.0};
  std::int64_t total_messages{0};
  std::int64_t retransmissions{0};
  std::int64_t duplicates_suppressed{0};
  std::int64_t random_drops{0};
};

struct CrashPoint {
  int k{0};
  std::int64_t n{0};
  std::int64_t crashes{0};
  std::int64_t max_load{0};
  double load_per_k{0.0};
  std::int64_t crash_handovers{0};
  std::int64_t origin_retransmissions{0};
  std::int64_t backups_sent{0};
  std::int64_t transport_retransmissions{0};
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "FAULT: exact counting under message loss and crashes, and its message price",
      {"crash_drop", "crash_k_list", "crash_list", "drops", "k_list", "ops_factor", "out", "seed"});
  const auto k_list = parse_int_list(flags.get_string("k_list", "2,3,4"));
  const auto crash_k_list =
      parse_int_list(flags.get_string("crash_k_list", "2,3"));
  const auto drops =
      parse_double_list(flags.get_string("drops", "0,0.02,0.05,0.1,0.2"));
  const auto crash_list = parse_int_list(flags.get_string("crash_list", "0,1,2"));
  const double crash_drop = flags.get_double("crash_drop", 0.01);
  const std::int64_t ops_factor = flags.get_int("ops_factor", 1);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 97));
  const std::string out = flags.get_string("out", "BENCH_faults.json");

  // --- Drop sweep: plain tree under the reliable transport. -------------
  Table drop_table({"k", "n", "drop", "max_load", "max/k", "total_msgs",
                    "retransmits", "dups_supp", "drops_hit"});
  std::vector<DropPoint> drop_points;
  for (const std::int64_t k : k_list) {
    for (const double p : drops) {
      SimConfig cfg;
      cfg.seed = seed;
      cfg.delay = DelayModel::uniform(1, 4);
      cfg.faults.drop_probability = p;
      TreeCounterParams params;
      params.k = static_cast<int>(k);
      RetryParams retry;
      retry.ack_timeout = 8;
      retry.max_timeout = 64;
      retry.max_attempts = 20;
      Simulator sim(std::make_unique<ReliableTransport>(
                        std::make_unique<TreeCounter>(params), retry),
                    cfg);
      const auto n = static_cast<std::int64_t>(sim.num_processors());
      const RunResult res = run_sequential(sim, live_order(n, ops_factor * n, {}));
      DCNT_CHECK(res.values_ok);
      const LoadReport report = make_load_report(sim);
      const auto& transport =
          dynamic_cast<const ReliableTransport&>(sim.counter());
      DropPoint pt;
      pt.k = static_cast<int>(k);
      pt.n = n;
      pt.drop = p;
      pt.max_load = report.max_load;
      pt.load_per_k = static_cast<double>(report.max_load) / static_cast<double>(k);
      pt.total_messages = report.total_messages;
      pt.retransmissions = transport.stats().retransmissions;
      pt.duplicates_suppressed = transport.stats().duplicates_suppressed;
      pt.random_drops = sim.fault_plane().stats().random_drops;
      drop_points.push_back(pt);
      drop_table.row()
          .add(pt.k)
          .add(pt.n)
          .add(pt.drop, 2)
          .add(pt.max_load)
          .add(pt.load_per_k, 2)
          .add(pt.total_messages)
          .add(pt.retransmissions)
          .add(pt.duplicates_suppressed)
          .add(pt.random_drops);
    }
  }
  drop_table.print(std::cout,
                   "FAULT: bottleneck vs drop rate (paper workload; max/k "
                   "must stay flat in k at every drop rate)");

  // --- Crash sweep: self-healing tree, incumbents crash mid-sequence. ---
  Table crash_table({"k", "n", "crashes", "max_load", "max/k", "handovers",
                     "origin_rtx", "backups", "transport_rtx"});
  std::vector<CrashPoint> crash_points;
  for (const std::int64_t k : crash_k_list) {
    const TreeLayout layout(static_cast<int>(k));
    for (const std::int64_t c : crash_list) {
      SimConfig cfg;
      cfg.seed = seed;
      cfg.delay = DelayModel::uniform(1, 4);
      cfg.faults.drop_probability = c > 0 ? crash_drop : 0.0;
      TreeCounterParams params;
      params.k = static_cast<int>(k);
      params.age_threshold = 1'000'000'000;  // pin the initial incumbents
      params.self_healing = true;
      params.inc_retry_timeout = 48;
      RetryParams retry;
      retry.ack_timeout = 8;
      retry.max_timeout = 32;
      retry.max_attempts = 4;
      // Crash the root's processor first, then node 2's incumbent —
      // members of disjoint level-1 pools, so each loss is recoverable.
      std::vector<ProcessorId> victims;
      if (c >= 1) victims.push_back(layout.initial_pid(0));
      if (c >= 2) victims.push_back(layout.initial_pid(2));
      DCNT_CHECK_MSG(c <= 2, "crash sweep supports at most 2 crashes");
      auto counter = make_fault_tolerant_tree_counter(params, retry);
      const auto n = static_cast<std::int64_t>(counter->num_processors());
      const std::int64_t ops = ops_factor * n;
      // Land the crashes in the first half of the run: sequential ops
      // drain their retry timer, so one op takes about one retry period.
      for (std::size_t j = 0; j < victims.size(); ++j) {
        const SimTime at = static_cast<SimTime>(j + 1) * ops *
                           params.inc_retry_timeout /
                           (2 * static_cast<SimTime>(victims.size() + 1));
        cfg.faults.crashes.push_back({victims[j], at, -1});
      }
      Simulator sim(std::move(counter), cfg);
      const RunResult res = run_sequential(sim, live_order(n, ops, victims));
      DCNT_CHECK(res.values_ok);
      const LoadReport report = make_load_report(sim);
      const auto& transport =
          dynamic_cast<const ReliableTransport&>(sim.counter());
      const auto& tree = dynamic_cast<const TreeService&>(transport.inner());
      DCNT_CHECK_MSG(tree.stats().crash_handovers >= c,
                     "a scheduled crash was never detected");
      CrashPoint pt;
      pt.k = static_cast<int>(k);
      pt.n = n;
      pt.crashes = c;
      pt.max_load = report.max_load;
      pt.load_per_k = static_cast<double>(report.max_load) / static_cast<double>(k);
      pt.crash_handovers = tree.stats().crash_handovers;
      pt.origin_retransmissions = tree.stats().retransmissions;
      pt.backups_sent = tree.stats().backups_sent;
      pt.transport_retransmissions = transport.stats().retransmissions;
      crash_points.push_back(pt);
      crash_table.row()
          .add(pt.k)
          .add(pt.n)
          .add(pt.crashes)
          .add(pt.max_load)
          .add(pt.load_per_k, 2)
          .add(pt.crash_handovers)
          .add(pt.origin_retransmissions)
          .add(pt.backups_sent)
          .add(pt.transport_retransmissions);
    }
  }
  crash_table.print(std::cout,
                    "FAULT: bottleneck vs crash count (pinned incumbents; "
                    "values stay exact, max_load within a small constant of "
                    "the c=0 row while promotions replace the dead)");

  JsonWriter json(out);
  json.field("bench", "faults");
  json.field("seed", seed);
  json.field("ops_factor", ops_factor);
  json.begin_array("drop_sweep");
  for (const DropPoint& p : drop_points) {
    json.begin_object();
    json.field("k", p.k);
    json.field("n", p.n);
    json.field("drop", p.drop);
    json.field("max_load", p.max_load);
    json.field("load_per_k", p.load_per_k);
    json.field("total_messages", p.total_messages);
    json.field("retransmissions", p.retransmissions);
    json.field("random_drops", p.random_drops);
    json.end_object();
  }
  json.end_array();
  json.begin_array("crash_sweep");
  for (const CrashPoint& p : crash_points) {
    json.begin_object();
    json.field("k", p.k);
    json.field("n", p.n);
    json.field("crashes", p.crashes);
    json.field("max_load", p.max_load);
    json.field("load_per_k", p.load_per_k);
    json.field("crash_handovers", p.crash_handovers);
    json.field("backups_sent", p.backups_sent);
    json.end_object();
  }
  json.end_array();
  return 0;
}
