#include "bench_util.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "support/check.hpp"

namespace dcnt {

namespace {

void print_usage(std::FILE* out, const char* binary,
                 const std::string& description,
                 const std::vector<std::string>& known) {
  std::fprintf(out, "%s\n\nusage: %s [--flag=value ...]\nflags:\n",
               description.c_str(), binary);
  for (const std::string& key : known) {
    std::fprintf(out, "  --%s\n", key.c_str());
  }
  std::fprintf(out, "  --help\n");
}

}  // namespace

Flags parse_bench_flags(int argc, char** argv, const std::string& description,
                        const std::vector<std::string>& known) {
  const char* binary = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout, binary, description, known);
      std::exit(0);
    }
  }
  Flags flags(argc, argv);
  for (const auto& [key, value] : flags.all()) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      std::fprintf(stderr, "unknown flag --%s\n\n", key.c_str());
      print_usage(stderr, binary, description, known);
      std::exit(2);
    }
  }
  return flags;
}

std::vector<std::int64_t> parse_int_list(const std::string& text) {
  std::vector<std::int64_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoll(item));
  return out;
}

std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  return out;
}

std::vector<std::string> parse_string_list(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

JsonWriter::JsonWriter(std::string path) : path_(std::move(path)) {
  f_ = std::fopen(path_.c_str(), "w");
  DCNT_CHECK_MSG(f_ != nullptr, "cannot open --out file");
  std::fprintf(f_, "{\n");
}

JsonWriter::~JsonWriter() {
  DCNT_CHECK_MSG(!in_array_ && !in_row_, "unterminated JSON array/object");
  std::fprintf(f_, "\n}\n");
  std::fclose(f_);
  std::printf("wrote %s\n", path_.c_str());
}

std::FILE* JsonWriter::pre_key(const std::string& key) {
  if (in_row_) {
    if (!first_in_row_) std::fprintf(f_, ", ");
    first_in_row_ = false;
  } else {
    DCNT_CHECK_MSG(!in_array_, "scalar field directly inside an array");
    if (!first_at_top_) std::fprintf(f_, ",\n");
    first_at_top_ = false;
    std::fprintf(f_, "  ");
  }
  std::fprintf(f_, "\"%s\": ", key.c_str());
  return f_;
}

void JsonWriter::field_int(const std::string& key, long long value) {
  std::fprintf(pre_key(key), "%lld", value);
}

void JsonWriter::field(const std::string& key, double value, int precision) {
  std::fprintf(pre_key(key), "%.*f", precision, value);
}

void JsonWriter::field(const std::string& key, const std::string& value) {
  std::fprintf(pre_key(key), "\"%s\"", value.c_str());
}

void JsonWriter::field(const std::string& key, const char* value) {
  field(key, std::string(value));
}

void JsonWriter::begin_array(const std::string& key) {
  DCNT_CHECK_MSG(!in_array_ && !in_row_, "nested arrays are not supported");
  if (!first_at_top_) std::fprintf(f_, ",\n");
  first_at_top_ = false;
  std::fprintf(f_, "  \"%s\": [", key.c_str());
  in_array_ = true;
  first_in_array_ = true;
}

void JsonWriter::end_array() {
  DCNT_CHECK_MSG(in_array_ && !in_row_, "end_array outside an array");
  if (!first_in_array_) std::fprintf(f_, "\n  ");
  std::fprintf(f_, "]");
  in_array_ = false;
}

void JsonWriter::begin_object() {
  DCNT_CHECK_MSG(in_array_ && !in_row_, "row objects only live in arrays");
  if (!first_in_array_) std::fprintf(f_, ",");
  first_in_array_ = false;
  std::fprintf(f_, "\n    {");
  in_row_ = true;
  first_in_row_ = true;
}

void JsonWriter::end_object() {
  DCNT_CHECK_MSG(in_row_, "end_object outside a row");
  std::fprintf(f_, "}");
  in_row_ = false;
}

}  // namespace dcnt
