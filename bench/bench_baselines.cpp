// CMP — the landscape the paper's introduction motivates: the
// message-optimal centralized counter "does not scale — the single
// processor handling the counter value will be a bottleneck", while
// the related-work structures (combining trees, counting networks,
// diffracting trees, quorums) spread the load in different ways, and
// the paper's tree counter achieves the optimal O(k).
//
// For each counter and each n we run one inc per processor
// (sequentially, the paper's model) and report bottleneck load, mean
// load, and total messages. Expected shape:
//   central / static-tree / diffracting root : bottleneck Theta(n)
//   counting network                         : Theta(n / width)
//   quorum counters                          : Theta(sqrt(n)..n)
//   tree (paper)                             : Theta(k) = Theta(log n / log log n)
//
// A second table re-runs everything under *concurrent* batches to show
// what combining/diffraction buy in the dimension the paper
// deliberately excludes (contention in time), without changing the
// sequential-model conclusion.
//
// Flags: --sizes=64,256,1024 --seed=5 --batch=32
#include <iostream>

#include "analysis/latency.hpp"
#include "bench_util.hpp"
#include "analysis/report.hpp"
#include "harness/factory.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "CMP: bottleneck landscape across counter implementations",
      {"batch", "seed", "sizes"});
  const auto sizes = parse_int_list(flags.get_string("sizes", "64,256,1024"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const auto batch = static_cast<std::size_t>(flags.get_int("batch", 32));

  Table table({"counter", "n", "k(n)", "max_load", "max/k", "mean_load",
               "p99", "total_msgs", "mean latency"});
  for (const std::int64_t n : sizes) {
    for (const CounterKind kind : all_counter_kinds()) {
      SimConfig cfg;
      cfg.seed = seed;
      cfg.delay = DelayModel::uniform(1, 8);
      Simulator sim(make_counter(kind, n), cfg);
      const auto actual_n = static_cast<std::int64_t>(sim.num_processors());
      run_sequential(sim, schedule_sequential(actual_n));
      const LoadReport report = make_load_report(sim);
      const LatencyReport latency = latency_report(sim);
      table.row()
          .add(to_string(kind))
          .add(actual_n)
          .add(report.paper_k, 2)
          .add(report.max_load)
          .add(report.load_per_k, 1)
          .add(report.mean_load, 2)
          .add(report.p99)
          .add(report.total_messages)
          .add(latency.mean, 1);
    }
  }
  table.print(std::cout,
              "CMP: one inc per processor, sequential (the paper's model) — "
              "bottleneck by design");

  Table conc({"counter", "n", "max_load(seq)", "max_load(conc)",
              "total_msgs(conc)"});
  const std::int64_t n = sizes.back();
  for (const CounterKind kind : all_counter_kinds()) {
    if (!supports_concurrency(kind)) continue;
    SimConfig cfg;
    cfg.seed = seed;
    cfg.delay = DelayModel::uniform(1, 8);
    Simulator seq(make_counter(kind, n), cfg);
    const auto actual_n = static_cast<std::int64_t>(seq.num_processors());
    run_sequential(seq, schedule_sequential(actual_n));
    Simulator par(make_counter(kind, n), cfg);
    run_concurrent(par, make_batches(schedule_sequential(actual_n), batch));
    conc.row()
        .add(to_string(kind))
        .add(actual_n)
        .add(seq.metrics().max_load())
        .add(par.metrics().max_load())
        .add(par.metrics().total_messages());
  }
  conc.print(std::cout,
             "CMP (extension): concurrent batches — combining/diffraction "
             "attack contention in time, orthogonal to the paper's "
             "aggregate-load bound");
  return 0;
}
