// THRU — wall-clock throughput of unmodified protocols on real cores.
//
// The simulator measures the paper's quantity (messages through the
// bottleneck); this bench measures what the bottleneck costs in wall
// time. Each selected counter runs the workload driver against the
// threaded runtime at every worker count in --workers_list, and we
// report increments/second plus client-observed latency percentiles.
// The runtime verifies exactness as it goes: the returned values must
// be a permutation of 0..m-1 and the protocol must pass its own
// quiescence audit, so a row in this table is also a correctness run.
//
// Counters that decline sharded execution (shard_safe() == false) are
// skipped at W > 1 rather than run unsoundly.
//
// Emits a JSON baseline (default BENCH_throughput.json; the checked-in
// copy at the repo root is the reference measurement).
//
// Each run starts with --warmup unrecorded operations (run to
// quiescence, metrics reset after) so thread wakeups, buffer growth and
// page faults do not land in the measured percentiles — that cold-start
// was the old workers=1 p99 = 1795µs artifact. The table ends with a
// per-counter scaling line (ops/s at the largest worker count vs 1),
// also emitted to the JSON, so a scaling regression is visible right in
// the baseline trajectory.
//
// Open-loop traffic-engine rows (--rates non-empty): each counter runs
// the open-loop generator at every rate in --rates, on a deterministic
// arrival timeline (--shape=constant|burst|diurnal), with latency
// measured from each op's *scheduled* arrival — coordinated omission
// cannot hide a backlog. Rows report p50..p99.99 + max plus SLO
// attainment (--slo_us) and land in an "open_loop" JSON array. Large
// runs (> --exact_cap ops) record into the O(buckets) HDR histogram.
// --open_ops_list sweeps run length at fixed rate: at a rate above
// capacity, p99 growing with run length is the open-loop saturation
// signature the closed loop structurally cannot show.
//
// Flags: --counters=tree,central,combining,diffracting
//        --workers_list=1,2,4,8 (0 = auto: --threads, DCNT_THREADS, or
//        all cores) --n=16 --ops_factor=16 --concurrency=16
//        --warmup=256 --dist=roundrobin|uniform|zipf --zipf_s=0.9
//        --open_rate=0 --seed=7 --out=BENCH_throughput.json
//        --rates= --open_ops_list=1000000 --open_workers=0
//        --open_counters= (default: --counters; the checked-in baseline
//        restricts open rows to central, whose cost per outstanding op
//        is flat — a tree hit with a 10^5-op backlog thrashes, which is
//        a finding, not a baseline)
//        --shape=constant --period=1 --amplitude=0.5 --duty=0.5
//        --duration=0 --slo_us=0 --exact_cap=65536
//        --quick (tiny closed+open sweep for the ctest smoke)
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "traffic/recorder.hpp"

#include "bench_util.hpp"
#include "harness/factory.hpp"
#include "harness/throughput.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "THRU: wall-clock inc throughput on the threaded runtime",
      {"amplitude", "concurrency", "counters", "dist", "duration", "duty",
       "exact_cap", "n", "open_counters", "open_ops_list", "open_rate",
       "open_workers", "ops_factor", "out", "period", "quick", "rates",
       "seed", "shape", "slo_us", "threads", "warmup", "workers_list",
       "zipf_s"});
  const bool quick = flags.get_bool("quick", false);
  const auto counters = parse_string_list(flags.get_string(
      "counters", quick ? "tree,central" : "tree,central,combining,diffracting"));
  const auto workers_list = parse_int_list(
      flags.get_string("workers_list", quick ? "1,2" : "1,2,4,8"));
  const std::int64_t n = flags.get_int("n", quick ? 8 : 16);
  const std::int64_t ops_factor = flags.get_int("ops_factor", quick ? 2 : 16);
  const auto concurrency =
      static_cast<std::size_t>(flags.get_int("concurrency", quick ? 8 : 16));
  const std::string dist = flags.get_string("dist", "roundrobin");
  const double zipf_s = flags.get_double("zipf_s", 0.9);
  const double open_rate = flags.get_double("open_rate", 0.0);
  const auto warmup =
      static_cast<std::size_t>(flags.get_int("warmup", quick ? 64 : 256));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::string out = flags.get_string("out", "BENCH_throughput.json");
  // Open-loop traffic-engine sweep. --quick exercises the whole path —
  // constant and burst shapes, SLO accounting, and the HDR recorder
  // (exact_cap forced under the op count) — in well under a second.
  const auto rates = parse_double_list(
      flags.get_string("rates", quick ? "20000" : ""));
  // Open rows may target a subset of the closed-sweep counters: the
  // over-saturation series needs a counter whose per-outstanding-op
  // cost is flat (central), while the closed sweep keeps them all.
  const auto open_counters = parse_string_list(
      flags.get_string("open_counters", flags.get_string(
          "counters", quick ? "tree,central"
                            : "tree,central,combining,diffracting")));
  const auto open_ops_list = parse_int_list(
      flags.get_string("open_ops_list", quick ? "4000" : "1000000"));
  const auto open_workers =
      static_cast<std::size_t>(flags.get_int("open_workers", 0));
  const std::string shape = flags.get_string("shape", "constant");
  const double period = flags.get_double("period", 1.0);
  const double amplitude = flags.get_double("amplitude", 0.5);
  const double duty = flags.get_double("duty", 0.5);
  const double duration = flags.get_double("duration", 0.0);
  const double slo_us = flags.get_double("slo_us", quick ? 1000.0 : 0.0);
  const auto exact_cap = static_cast<std::size_t>(flags.get_int(
      "exact_cap",
      quick ? 1024
            : static_cast<std::int64_t>(
                  dcnt::traffic::TailRecorder::kDefaultExactCap)));

  Table table({"counter", "n", "W", "ops", "inc/s", "p50_us", "p95_us",
               "p99_us", "max_load", "total_msgs"});
  std::vector<ThroughputResult> results;
  for (const std::string& name : counters) {
    const CounterKind kind = counter_kind_from_string(name);
    for (const std::int64_t w : workers_list) {
      // 0 = the shared process-wide knob (--threads / DCNT_THREADS).
      const std::size_t workers =
          w == 0 ? threads_from_flags(flags) : static_cast<std::size_t>(w);
      auto protocol = make_counter(kind, n);
      if (workers > 1 && !protocol->shard_safe()) {
        std::cout << "skip: " << protocol->name() << " at W=" << workers
                  << " (not shard-safe)\n";
        continue;
      }
      ThroughputOptions options;
      options.workers = workers;
      options.ops = static_cast<std::size_t>(ops_factor) *
                    protocol->num_processors();
      options.concurrency = concurrency;
      options.open_rate = open_rate;
      options.initiators = dist;
      options.zipf_s = zipf_s;
      options.seed = seed;
      options.warmup = warmup;
      const ThroughputResult res = run_throughput(std::move(protocol), options);
      results.push_back(res);
      table.row()
          .add(res.counter)
          .add(static_cast<std::int64_t>(res.n))
          .add(static_cast<std::int64_t>(res.workers))
          .add(static_cast<std::int64_t>(res.ops))
          .add(res.ops_per_sec, 0)
          .add(res.p50_us, 1)
          .add(res.p95_us, 1)
          .add(res.p99_us, 1)
          .add(res.max_load)
          .add(res.total_messages);
    }
  }
  table.print(std::cout,
              "THRU: closed-loop increments/second on real threads (" + dist +
                  " initiators; every run verified exact)");

  // Scaling check: ops/s at the largest measured worker count relative
  // to one worker. >= 1.0 means adding workers does not cost throughput
  // (the acceptance bar on this box); the old runtime sat well below it.
  struct ScalingRow {
    std::size_t w_lo{0}, w_hi{0};
    double lo{0.0}, hi{0.0};
  };
  std::map<std::string, ScalingRow> scaling;
  for (const ThroughputResult& r : results) {
    ScalingRow& row = scaling[r.counter];
    if (row.w_lo == 0 || r.workers < row.w_lo) {
      row.w_lo = r.workers;
      row.lo = r.ops_per_sec;
    }
    if (r.workers > row.w_hi) {
      row.w_hi = r.workers;
      row.hi = r.ops_per_sec;
    }
  }
  for (const auto& [counter, row] : scaling) {
    if (row.w_hi <= row.w_lo || row.lo <= 0.0) continue;
    std::cout << "scaling " << counter << ": W=" << row.w_hi << " / W="
              << row.w_lo << " = " << row.hi / row.lo << "x\n";
  }

  // Open-loop traffic-engine rows: every (counter, rate, op-budget)
  // triple runs the scheduled-arrival generator; --quick adds a burst
  // row so both modulated shapes stay exercised in the smoke.
  struct OpenRow {
    ThroughputResult res;
    double rate{0.0};
    std::string shape;
    std::size_t requested{0};
  };
  std::vector<OpenRow> open_rows;
  if (!rates.empty()) {
    Table open_table({"counter", "rate/s", "shape", "ops", "inc/s", "p50_us",
                      "p99_us", "p999_us", "p9999_us", "max_us", "slo%",
                      "hdr"});
    std::vector<std::string> shapes{shape};
    if (quick && shape == "constant") shapes.push_back("burst");
    for (const std::string& name : open_counters) {
      const CounterKind kind = counter_kind_from_string(name);
      for (const double rate : rates) {
        for (const std::int64_t open_ops : open_ops_list) {
          for (const std::string& shape_name : shapes) {
            auto protocol = make_counter(kind, n);
            if (open_workers > 1 && !protocol->shard_safe()) continue;
            ThroughputOptions options;
            options.workers = open_workers;
            options.ops = static_cast<std::size_t>(open_ops);
            options.concurrency = concurrency;
            options.open_rate = rate;
            options.shape = shape_name;
            options.period_s = period;
            options.amplitude = amplitude;
            options.duty = duty;
            options.duration_s = duration;
            options.slo_us = slo_us;
            options.exact_cap = exact_cap;
            options.initiators = dist;
            options.zipf_s = zipf_s;
            options.seed = seed;
            options.warmup = warmup;
            const ThroughputResult res =
                run_throughput(std::move(protocol), options);
            open_rows.push_back(OpenRow{res, rate, shape_name,
                                        static_cast<std::size_t>(open_ops)});
            open_table.row()
                .add(res.counter)
                .add(rate, 0)
                .add(shape_name)
                .add(static_cast<std::int64_t>(res.ops))
                .add(res.ops_per_sec, 0)
                .add(res.p50_us, 1)
                .add(res.p99_us, 1)
                .add(res.p999_us, 1)
                .add(res.p9999_us, 1)
                .add(res.max_us, 1)
                .add(100.0 * res.slo_attainment, 2)
                .add(res.hdr_recorder ? "y" : "n");
          }
        }
      }
    }
    open_table.print(
        std::cout,
        "THRU-OPEN: open-loop tails, latency from scheduled arrival "
        "(coordinated-omission-free; every run verified exact)");
  }

  JsonWriter json(out);
  json.field("bench", "throughput");
  json.field("dist", dist);
  json.field("ops_factor", ops_factor);
  json.field("concurrency", concurrency);
  json.field("open_rate", open_rate, 1);
  json.field("warmup", warmup);
  json.field("seed", seed);
  json.field("hardware_threads", default_thread_count());
  json.begin_array("throughput");
  for (const ThroughputResult& r : results) {
    json.begin_object();
    json.field("counter", r.counter);
    json.field("n", r.n);
    json.field("workers", r.workers);
    json.field("ops", r.ops);
    json.field("wall_seconds", r.wall_seconds, 4);
    json.field("ops_per_sec", r.ops_per_sec, 1);
    json.field("mean_us", r.mean_us, 2);
    json.field("p50_us", r.p50_us, 2);
    json.field("p95_us", r.p95_us, 2);
    json.field("p99_us", r.p99_us, 2);
    json.field("total_messages", r.total_messages);
    json.field("max_load", r.max_load);
    json.field("bottleneck", r.bottleneck);
    json.end_object();
  }
  json.end_array();
  json.begin_array("open_loop");
  for (const OpenRow& row : open_rows) {
    const ThroughputResult& r = row.res;
    json.begin_object();
    json.field("counter", r.counter);
    json.field("n", r.n);
    json.field("workers", r.workers);
    json.field("rate", row.rate, 1);
    json.field("shape", row.shape);
    json.field("ops_requested", row.requested);
    json.field("ops", r.ops);
    json.field("wall_seconds", r.wall_seconds, 4);
    json.field("ops_per_sec", r.ops_per_sec, 1);
    json.field("mean_us", r.mean_us, 2);
    json.field("p50_us", r.p50_us, 2);
    json.field("p95_us", r.p95_us, 2);
    json.field("p99_us", r.p99_us, 2);
    json.field("p999_us", r.p999_us, 2);
    json.field("p9999_us", r.p9999_us, 2);
    json.field("max_us", r.max_us, 2);
    json.field("slo_us", r.slo_us, 1);
    json.field("slo_ok", r.slo_ok);
    json.field("slo_den", r.slo_den);
    json.field("slo_attainment", r.slo_attainment, 6);
    json.field("hdr_recorder", r.hdr_recorder ? 1 : 0);
    json.field("hdr_overflow", r.hdr_overflow);
    json.field("record_threads", r.record_threads);
    json.field("total_messages", r.total_messages);
    json.field("max_load", r.max_load);
    json.end_object();
  }
  json.end_array();
  json.begin_array("scaling");
  for (const auto& [counter, row] : scaling) {
    if (row.w_hi <= row.w_lo || row.lo <= 0.0) continue;
    json.begin_object();
    json.field("counter", counter);
    json.field("workers_lo", row.w_lo);
    json.field("workers_hi", row.w_hi);
    json.field("ratio", row.hi / row.lo, 3);
    json.end_object();
  }
  json.end_array();
  return 0;
}
