// THRU — wall-clock throughput of unmodified protocols on real cores.
//
// The simulator measures the paper's quantity (messages through the
// bottleneck); this bench measures what the bottleneck costs in wall
// time. Each selected counter runs the workload driver against the
// threaded runtime at every worker count in --workers_list, and we
// report increments/second plus client-observed latency percentiles.
// The runtime verifies exactness as it goes: the returned values must
// be a permutation of 0..m-1 and the protocol must pass its own
// quiescence audit, so a row in this table is also a correctness run.
//
// Counters that decline sharded execution (shard_safe() == false) are
// skipped at W > 1 rather than run unsoundly.
//
// Emits a JSON baseline (default BENCH_throughput.json; the checked-in
// copy at the repo root is the reference measurement).
//
// Each run starts with --warmup unrecorded operations (run to
// quiescence, metrics reset after) so thread wakeups, buffer growth and
// page faults do not land in the measured percentiles — that cold-start
// was the old workers=1 p99 = 1795µs artifact. The table ends with a
// per-counter scaling line (ops/s at the largest worker count vs 1),
// also emitted to the JSON, so a scaling regression is visible right in
// the baseline trajectory.
//
// Open-loop traffic-engine rows (--rates non-empty): each counter runs
// the open-loop generator at every rate in --rates, on a deterministic
// arrival timeline (--shape=constant|burst|diurnal), with latency
// measured from each op's *scheduled* arrival — coordinated omission
// cannot hide a backlog. Rows report p50..p99.99 + max plus SLO
// attainment (--slo_us) and land in an "open_loop" JSON array. Large
// runs (> --exact_cap ops) record into the O(buckets) HDR histogram.
// --open_ops_list sweeps run length at fixed rate: at a rate above
// capacity, p99 growing with run length is the open-loop saturation
// signature the closed loop structurally cannot show.
//
// Concurrency-plane rows (CONC, --inflight_list non-empty): closed-loop
// runs where every client slot keeps --inflight ops outstanding (window
// = concurrency * inflight), the per-op (invoke, response, value)
// history is captured live, and check_linearizable runs over it after
// quiescence. The table re-ranks the counters as the overlap deepens
// and reports each row's linearizability verdict: serializing counters
// (tree, central, combining) must show zero violations at every depth
// (enforced — the row aborts otherwise), while the diffracting tree is
// only quiescently consistent and MAY invert real-time order. The
// section ends with elastic-tree rows: a scripted k=2 -> k=3 migration
// fires mid-run and the run completing proves value exactness across
// the resize (resz column = completed migrations, enforced >= 1).
//
// Flags: --counters=tree,central,combining,diffracting
//        --workers_list=1,2,4,8 (0 = auto: --threads, DCNT_THREADS, or
//        all cores) --n=16 --ops_factor=16 --concurrency=16
//        --warmup=256 --dist=roundrobin|uniform|zipf --zipf_s=0.9
//        --open_rate=0 --seed=7 --out=BENCH_throughput.json
//        --rates= --open_ops_list=1000000 --open_workers=0
//        --open_counters= (default: --counters; the checked-in baseline
//        restricts open rows to central, whose cost per outstanding op
//        is flat — a tree hit with a 10^5-op backlog thrashes, which is
//        a finding, not a baseline)
//        --shape=constant --period=1 --amplitude=0.5 --duty=0.5
//        --duration=0 --slo_us=0 --exact_cap=65536
//        --quick (tiny closed+open sweep for the ctest smoke)
//
// SHM re-ranking rows (--shm_threads_list non-empty, the default): the
// silicon side of the same question. The shared-memory counters
// (src/shm/: shm-atomic, shm-flat, shm-funnel, shm-sharded) sweep
// threads x F x placement next to the message-passing protocols
// (--shm_msg_counters) at the SAME F, closed and open loop, pinned
// (--placement compact) and unpinned — the EXPERIMENTS.md SHM table.
// Every shm row's live history is checked (ticket criterion, or the
// inc/read criterion for shm-sharded) and ENFORCED linearizable; a
// placement that cannot pin on this host reports pin=0 rather than
// failing. --counters also accepts shm-* names directly (closed sweep,
// placement from --placement/--pin), e.g.
//   bench_throughput --counters=shm-atomic,shm-flat --pin
// Flags: --shm_counters=shm-atomic,shm-flat,shm-funnel,shm-sharded
//        --shm_threads_list=1,2,4 --shm_inflight_list=1,64
//        --shm_placements=none,compact --shm_msg_counters=tree,central,
//        combining --shm_ops=32768 --shm_rate=200000
//        --placement=none|compact|scatter|tree --pin (= compact)
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "traffic/recorder.hpp"

#include "bench_util.hpp"
#include "concurrent/elastic_tree.hpp"
#include "harness/factory.hpp"
#include "harness/throughput.hpp"
#include "shm/shm_harness.hpp"
#include "support/check.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "THRU: wall-clock inc throughput on the threaded runtime",
      {"amplitude", "conc_counters", "conc_workers", "concurrency",
       "counters", "dist", "duration", "duty", "exact_cap", "inflight_list",
       "n", "open_counters", "open_ops_list", "open_rate", "open_workers",
       "ops_factor", "out", "period", "pin", "placement", "quick", "rates",
       "seed", "shape", "shm_counters", "shm_inflight_list",
       "shm_msg_counters", "shm_ops", "shm_placements", "shm_rate",
       "shm_threads_list", "slo_us", "threads", "warmup", "workers_list",
       "zipf_s"});
  const bool quick = flags.get_bool("quick", false);
  const auto counters = parse_string_list(flags.get_string(
      "counters", quick ? "tree,central" : "tree,central,combining,diffracting"));
  const auto workers_list = parse_int_list(
      flags.get_string("workers_list", quick ? "1,2" : "1,2,4,8"));
  const std::int64_t n = flags.get_int("n", quick ? 8 : 16);
  const std::int64_t ops_factor = flags.get_int("ops_factor", quick ? 2 : 16);
  const auto concurrency =
      static_cast<std::size_t>(flags.get_int("concurrency", quick ? 8 : 16));
  const std::string dist = flags.get_string("dist", "roundrobin");
  const double zipf_s = flags.get_double("zipf_s", 0.9);
  const double open_rate = flags.get_double("open_rate", 0.0);
  const auto warmup =
      static_cast<std::size_t>(flags.get_int("warmup", quick ? 64 : 256));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::string out = flags.get_string("out", "BENCH_throughput.json");
  // Open-loop traffic-engine sweep. --quick exercises the whole path —
  // constant and burst shapes, SLO accounting, and the HDR recorder
  // (exact_cap forced under the op count) — in well under a second.
  const auto rates = parse_double_list(
      flags.get_string("rates", quick ? "20000" : ""));
  // Open rows may target a subset of the closed-sweep counters: the
  // over-saturation series needs a counter whose per-outstanding-op
  // cost is flat (central), while the closed sweep keeps them all.
  const auto open_counters = parse_string_list(
      flags.get_string("open_counters", flags.get_string(
          "counters", quick ? "tree,central"
                            : "tree,central,combining,diffracting")));
  const auto open_ops_list = parse_int_list(
      flags.get_string("open_ops_list", quick ? "4000" : "1000000"));
  const auto open_workers =
      static_cast<std::size_t>(flags.get_int("open_workers", 0));
  const std::string shape = flags.get_string("shape", "constant");
  const double period = flags.get_double("period", 1.0);
  const double amplitude = flags.get_double("amplitude", 0.5);
  const double duty = flags.get_double("duty", 0.5);
  const double duration = flags.get_double("duration", 0.0);
  const double slo_us = flags.get_double("slo_us", quick ? 1000.0 : 0.0);
  const auto exact_cap = static_cast<std::size_t>(flags.get_int(
      "exact_cap",
      quick ? 1024
            : static_cast<std::int64_t>(
                  dcnt::traffic::TailRecorder::kDefaultExactCap)));
  // CONC sweep: in-flight depths per closed-loop slot. Empty disables
  // the section.
  const auto inflight_list = parse_int_list(flags.get_string(
      "inflight_list", quick ? "1,8" : "1,8,64,256"));
  const auto conc_counters = parse_string_list(flags.get_string(
      "conc_counters", quick ? "tree,central,diffracting"
                             : "tree,central,combining,diffracting"));
  const auto conc_workers =
      static_cast<std::size_t>(flags.get_int("conc_workers", quick ? 2 : 4));
  // SHM re-ranking sweep: --pin is shorthand for --placement compact;
  // an explicit --placement wins.
  const Placement placement = placement_from_string(flags.get_string(
      "placement", flags.get_bool("pin", false) ? "compact" : "none"));
  const auto shm_counters = parse_string_list(flags.get_string(
      "shm_counters", "shm-atomic,shm-flat,shm-funnel,shm-sharded"));
  const auto shm_threads_list = parse_int_list(
      flags.get_string("shm_threads_list", quick ? "1,2" : "1,2,4"));
  const auto shm_inflight_list =
      parse_int_list(flags.get_string("shm_inflight_list", "1,64"));
  const auto shm_placements = parse_string_list(
      flags.get_string("shm_placements", "none,compact"));
  const auto shm_msg_counters = parse_string_list(flags.get_string(
      "shm_msg_counters", quick ? "tree,central" : "tree,central,combining"));
  const auto shm_ops = static_cast<std::size_t>(
      flags.get_int("shm_ops", quick ? 2048 : 32768));
  const double shm_rate =
      flags.get_double("shm_rate", quick ? 20000.0 : 200000.0);

  Table table({"counter", "n", "W", "ops", "inc/s", "p50_us", "p95_us",
               "p99_us", "max_load", "total_msgs"});
  std::vector<ThroughputResult> results;
  for (const std::string& name : counters) {
    if (shm::is_shm_counter_name(name)) {
      // Shared-memory counters ride the same closed sweep: W means
      // driving threads, coherence messages are invisible to Metrics so
      // max_load/total_msgs report 0.
      const shm::ShmKind kind = shm::shm_kind_from_string(name);
      for (const std::int64_t w : workers_list) {
        shm::ShmOptions options;
        options.threads =
            w == 0 ? threads_from_flags(flags) : static_cast<std::size_t>(w);
        options.ops = shm_ops;
        options.warmup = warmup;
        options.seed = seed;
        options.placement = placement;
        const ThroughputResult res = run_shm_throughput(kind, options);
        DCNT_CHECK_MSG(res.lin_checked && res.linearizable,
                       "shm counter produced a non-linearizable history");
        results.push_back(res);
        table.row()
            .add(res.counter)
            .add(static_cast<std::int64_t>(res.n))
            .add(static_cast<std::int64_t>(res.workers))
            .add(static_cast<std::int64_t>(res.ops))
            .add(res.ops_per_sec, 0)
            .add(res.p50_us, 1)
            .add(res.p95_us, 1)
            .add(res.p99_us, 1)
            .add(res.max_load)
            .add(res.total_messages);
      }
      continue;
    }
    const CounterKind kind = counter_kind_from_string(name);
    for (const std::int64_t w : workers_list) {
      // 0 = the shared process-wide knob (--threads / DCNT_THREADS).
      const std::size_t workers =
          w == 0 ? threads_from_flags(flags) : static_cast<std::size_t>(w);
      auto protocol = make_counter(kind, n);
      if (workers > 1 && !protocol->shard_safe()) {
        std::cout << "skip: " << protocol->name() << " at W=" << workers
                  << " (not shard-safe)\n";
        continue;
      }
      ThroughputOptions options;
      options.workers = workers;
      options.ops = static_cast<std::size_t>(ops_factor) *
                    protocol->num_processors();
      options.concurrency = concurrency;
      options.open_rate = open_rate;
      options.initiators = dist;
      options.zipf_s = zipf_s;
      options.seed = seed;
      options.warmup = warmup;
      const ThroughputResult res = run_throughput(std::move(protocol), options);
      results.push_back(res);
      table.row()
          .add(res.counter)
          .add(static_cast<std::int64_t>(res.n))
          .add(static_cast<std::int64_t>(res.workers))
          .add(static_cast<std::int64_t>(res.ops))
          .add(res.ops_per_sec, 0)
          .add(res.p50_us, 1)
          .add(res.p95_us, 1)
          .add(res.p99_us, 1)
          .add(res.max_load)
          .add(res.total_messages);
    }
  }
  table.print(std::cout,
              "THRU: closed-loop increments/second on real threads (" + dist +
                  " initiators; every run verified exact)");

  // Scaling check: ops/s at the largest measured worker count relative
  // to one worker. >= 1.0 means adding workers does not cost throughput
  // (the acceptance bar on this box); the old runtime sat well below it.
  struct ScalingRow {
    std::size_t w_lo{0}, w_hi{0};
    double lo{0.0}, hi{0.0};
  };
  std::map<std::string, ScalingRow> scaling;
  for (const ThroughputResult& r : results) {
    ScalingRow& row = scaling[r.counter];
    if (row.w_lo == 0 || r.workers < row.w_lo) {
      row.w_lo = r.workers;
      row.lo = r.ops_per_sec;
    }
    if (r.workers > row.w_hi) {
      row.w_hi = r.workers;
      row.hi = r.ops_per_sec;
    }
  }
  for (const auto& [counter, row] : scaling) {
    if (row.w_hi <= row.w_lo || row.lo <= 0.0) continue;
    std::cout << "scaling " << counter << ": W=" << row.w_hi << " / W="
              << row.w_lo << " = " << row.hi / row.lo << "x\n";
  }

  // CONC: the concurrency plane. Each row keeps concurrency * F incs
  // outstanding, captures the live (invoke, response, value) history,
  // and runs check_linearizable over it after quiescence. Serializing
  // counters are *enforced* linearizable at every depth; the
  // diffracting tree is only quiescently consistent, so its verdict is
  // reported, not asserted. The final rows run the elastic tree with a
  // scripted k=2 -> k=3 migration; resz >= 1 is enforced, and the
  // permutation check inside run_throughput proves the values stayed
  // exact across the resize.
  struct ConcRow {
    ThroughputResult res;
    std::size_t inflight{0};
    std::size_t window{0};
    bool must_linearize{false};
  };
  std::vector<ConcRow> conc_rows;
  if (!inflight_list.empty()) {
    Table conc_table({"counter", "F", "window", "ops", "inc/s", "p50_us",
                      "p99_us", "lin", "viol", "resz"});
    const auto run_conc = [&](std::unique_ptr<CounterProtocol> protocol,
                              std::size_t inflight, bool must_linearize) {
      const std::size_t window = concurrency * inflight;
      ThroughputOptions options;
      options.workers = conc_workers;
      // Enough ops that the window is the steady state, not the whole
      // run (and, for the elastic rows, that the migration threshold is
      // crossed with room to run in the new epoch).
      options.ops = std::max<std::size_t>(
          static_cast<std::size_t>(ops_factor) * protocol->num_processors(),
          4 * window);
      options.concurrency = concurrency;
      options.inflight = inflight;
      options.initiators = dist;
      options.zipf_s = zipf_s;
      options.seed = seed;
      options.warmup = warmup;
      const ThroughputResult res = run_throughput(std::move(protocol), options);
      DCNT_CHECK_MSG(res.lin_checked, "CONC row skipped its history check");
      if (must_linearize) {
        DCNT_CHECK_MSG(res.linearizable,
                       "serializing counter produced a non-linearizable "
                       "history");
      }
      conc_rows.push_back(ConcRow{res, inflight, window, must_linearize});
      conc_table.row()
          .add(res.counter)
          .add(static_cast<std::int64_t>(inflight))
          .add(static_cast<std::int64_t>(window))
          .add(static_cast<std::int64_t>(res.ops))
          .add(res.ops_per_sec, 0)
          .add(res.p50_us, 1)
          .add(res.p99_us, 1)
          .add(res.linearizable ? "y" : "N")
          .add(res.lin_violations)
          .add(static_cast<std::int64_t>(res.elastic_resizes));
    };
    for (const std::string& name : conc_counters) {
      const CounterKind kind = counter_kind_from_string(name);
      for (const std::int64_t f : inflight_list) {
        auto protocol = make_counter(kind, n);
        if (conc_workers > 1 && !protocol->shard_safe()) continue;
        run_conc(std::move(protocol), static_cast<std::size_t>(f),
                 expected_linearizable(kind));
      }
    }
    for (const std::int64_t f : inflight_list) {
      concurrent::ElasticTreeParams params;
      params.initial_k = 2;
      params.min_k = 2;
      params.max_k = 3;
      // Low threshold so a round-robin schedule crosses it early: the
      // first processor to issue 16 ops into epoch 0 triggers the
      // scripted step.
      params.resize_period = 16;
      params.plan = {concurrent::ElasticStep{3, 0}};
      auto protocol = std::make_unique<concurrent::ElasticTreeCounter>(params);
      // The demo needs the migration threshold crossed well before the
      // run drains: every processor sees resize_period ops after
      // n * resize_period round-robin issues.
      const std::size_t floor_ops = 2 * protocol->num_processors() * 16;
      ThroughputOptions options;
      options.workers = conc_workers;
      options.ops = std::max<std::size_t>(4 * concurrency *
                                              static_cast<std::size_t>(f),
                                          floor_ops);
      options.concurrency = concurrency;
      options.inflight = static_cast<std::size_t>(f);
      options.initiators = dist;
      options.zipf_s = zipf_s;
      options.seed = seed;
      options.warmup = warmup;
      const ThroughputResult res = run_throughput(std::move(protocol), options);
      DCNT_CHECK_MSG(res.lin_checked && res.linearizable,
                     "elastic tree produced a non-linearizable history");
      DCNT_CHECK_MSG(res.elastic_resizes >= 1,
                     "elastic demo row completed no migration");
      conc_rows.push_back(ConcRow{res, static_cast<std::size_t>(f),
                                  concurrency * static_cast<std::size_t>(f),
                                  true});
      conc_table.row()
          .add(res.counter)
          .add(f)
          .add(static_cast<std::int64_t>(concurrency *
                                         static_cast<std::size_t>(f)))
          .add(static_cast<std::int64_t>(res.ops))
          .add(res.ops_per_sec, 0)
          .add(res.p50_us, 1)
          .add(res.p99_us, 1)
          .add(res.linearizable ? "y" : "N")
          .add(res.lin_violations)
          .add(static_cast<std::int64_t>(res.elastic_resizes));
    }
    conc_table.print(
        std::cout,
        "CONC: overlapping in-flight incs (window = concurrency * F), "
        "check_linearizable over every measured history");
  }

  // SHM: the silicon re-ranking table. Shared-memory counters sweep
  // threads x F x placement; the message-passing protocols run at the
  // SAME F (and placements) through the threaded runtime, so one table
  // ranks a contended fetch_add against the paper's tree on the same
  // host. Closed-loop rows first, then one open-loop row per shm
  // counter at --shm_rate. Every shm row's live history is enforced
  // linearizable — the ticket criterion for the value-returning
  // counters, the inc/read criterion for shm-sharded (the paper's
  // theorem: exact sharding is only possible because incs return no
  // ticket).
  struct ShmRow {
    ThroughputResult res;
    std::string mode;  ///< "shm" or "msg"
    std::string loop;  ///< "closed" or "open"
    std::size_t inflight{0};
    double rate{0.0};
  };
  std::vector<ShmRow> shm_rows;
  if (!shm_threads_list.empty()) {
    Table shm_table({"counter", "mode", "loop", "T", "F", "place", "pin",
                     "ops", "inc/s", "p50_us", "p99_us", "lin", "viol"});
    const auto add_shm_row = [&](const ThroughputResult& res,
                                 const std::string& mode,
                                 const std::string& loop, std::size_t inflight,
                                 double rate) {
      shm_rows.push_back(ShmRow{res, mode, loop, inflight, rate});
      shm_table.row()
          .add(res.counter)
          .add(mode)
          .add(loop)
          .add(static_cast<std::int64_t>(res.workers))
          .add(static_cast<std::int64_t>(inflight))
          .add(res.placement)
          .add(static_cast<std::int64_t>(res.pinned_workers))
          .add(static_cast<std::int64_t>(res.ops))
          .add(res.ops_per_sec, 0)
          .add(res.p50_us, 1)
          .add(res.p99_us, 1)
          .add(res.linearizable ? "y" : "N")
          .add(res.lin_violations);
    };
    for (const std::string& name : shm_counters) {
      const shm::ShmKind kind = shm::shm_kind_from_string(name);
      for (const std::string& place : shm_placements) {
        const Placement policy = placement_from_string(place);
        for (const std::int64_t t : shm_threads_list) {
          for (const std::int64_t f : shm_inflight_list) {
            shm::ShmOptions options;
            options.threads = static_cast<std::size_t>(t);
            options.ops = shm_ops;
            options.inflight = static_cast<std::size_t>(f);
            options.warmup = warmup;
            options.seed = seed;
            options.placement = policy;
            const ThroughputResult res = run_shm_throughput(kind, options);
            DCNT_CHECK_MSG(
                res.lin_checked && res.linearizable,
                "shm counter produced a non-linearizable history");
            add_shm_row(res, "shm", "closed",
                        static_cast<std::size_t>(f), 0.0);
          }
        }
        // One open-loop row per (counter, placement) at the sweep's
        // largest thread count: does the ranking hold under scheduled
        // arrivals too?
        if (shm_rate > 0.0 && !shm_threads_list.empty()) {
          shm::ShmOptions options;
          options.threads =
              static_cast<std::size_t>(shm_threads_list.back());
          options.ops = std::min<std::size_t>(shm_ops, quick ? 1024 : 16384);
          options.open_rate = shm_rate;
          options.warmup = warmup;
          options.seed = seed;
          options.placement = policy;
          const ThroughputResult res = run_shm_throughput(kind, options);
          DCNT_CHECK_MSG(res.lin_checked && res.linearizable,
                         "shm counter produced a non-linearizable history");
          add_shm_row(res, "shm", "open", 1, shm_rate);
        }
      }
    }
    // The message-passing side of the ranking: same F, same placements,
    // driven through the threaded runtime. Serializing protocols are
    // enforced linearizable exactly as in CONC.
    for (const std::string& name : shm_msg_counters) {
      const CounterKind kind = counter_kind_from_string(name);
      for (const std::string& place : shm_placements) {
        for (const std::int64_t f : shm_inflight_list) {
          auto protocol = make_counter(kind, n);
          if (conc_workers > 1 && !protocol->shard_safe()) continue;
          const std::size_t window =
              concurrency * static_cast<std::size_t>(f);
          ThroughputOptions options;
          options.workers = conc_workers;
          options.ops = std::max<std::size_t>(
              static_cast<std::size_t>(ops_factor) *
                  protocol->num_processors(),
              4 * window);
          options.concurrency = concurrency;
          options.inflight = static_cast<std::size_t>(f);
          options.initiators = dist;
          options.zipf_s = zipf_s;
          options.seed = seed;
          options.warmup = warmup;
          options.placement = placement_from_string(place);
          const ThroughputResult res =
              run_throughput(std::move(protocol), options);
          DCNT_CHECK_MSG(res.lin_checked, "SHM msg row skipped its check");
          if (expected_linearizable(kind)) {
            DCNT_CHECK_MSG(res.linearizable,
                           "serializing counter produced a non-linearizable "
                           "history");
          }
          add_shm_row(res, "msg", "closed", static_cast<std::size_t>(f),
                      0.0);
        }
      }
    }
    shm_table.print(
        std::cout,
        "SHM: silicon re-ranking — shared-memory counters vs "
        "message-passing protocols, pinned and unpinned (every shm row's "
        "history enforced linearizable)");
  }

  // Open-loop traffic-engine rows: every (counter, rate, op-budget)
  // triple runs the scheduled-arrival generator; --quick adds a burst
  // row so both modulated shapes stay exercised in the smoke.
  struct OpenRow {
    ThroughputResult res;
    double rate{0.0};
    std::string shape;
    std::size_t requested{0};
  };
  std::vector<OpenRow> open_rows;
  if (!rates.empty()) {
    Table open_table({"counter", "rate/s", "shape", "ops", "inc/s", "p50_us",
                      "p99_us", "p999_us", "p9999_us", "max_us", "slo%",
                      "hdr"});
    std::vector<std::string> shapes{shape};
    if (quick && shape == "constant") shapes.push_back("burst");
    for (const std::string& name : open_counters) {
      const CounterKind kind = counter_kind_from_string(name);
      for (const double rate : rates) {
        for (const std::int64_t open_ops : open_ops_list) {
          for (const std::string& shape_name : shapes) {
            auto protocol = make_counter(kind, n);
            if (open_workers > 1 && !protocol->shard_safe()) continue;
            ThroughputOptions options;
            options.workers = open_workers;
            options.ops = static_cast<std::size_t>(open_ops);
            options.concurrency = concurrency;
            options.open_rate = rate;
            options.shape = shape_name;
            options.period_s = period;
            options.amplitude = amplitude;
            options.duty = duty;
            options.duration_s = duration;
            options.slo_us = slo_us;
            options.exact_cap = exact_cap;
            options.initiators = dist;
            options.zipf_s = zipf_s;
            options.seed = seed;
            options.warmup = warmup;
            const ThroughputResult res =
                run_throughput(std::move(protocol), options);
            open_rows.push_back(OpenRow{res, rate, shape_name,
                                        static_cast<std::size_t>(open_ops)});
            open_table.row()
                .add(res.counter)
                .add(rate, 0)
                .add(shape_name)
                .add(static_cast<std::int64_t>(res.ops))
                .add(res.ops_per_sec, 0)
                .add(res.p50_us, 1)
                .add(res.p99_us, 1)
                .add(res.p999_us, 1)
                .add(res.p9999_us, 1)
                .add(res.max_us, 1)
                .add(100.0 * res.slo_attainment, 2)
                .add(res.hdr_recorder ? "y" : "n");
          }
        }
      }
    }
    open_table.print(
        std::cout,
        "THRU-OPEN: open-loop tails, latency from scheduled arrival "
        "(coordinated-omission-free; every run verified exact)");
  }

  JsonWriter json(out);
  json.field("bench", "throughput");
  json.field("dist", dist);
  json.field("ops_factor", ops_factor);
  json.field("concurrency", concurrency);
  json.field("open_rate", open_rate, 1);
  json.field("warmup", warmup);
  json.field("seed", seed);
  json.field("hardware_threads", default_thread_count());
  json.begin_array("throughput");
  for (const ThroughputResult& r : results) {
    json.begin_object();
    json.field("counter", r.counter);
    json.field("n", r.n);
    json.field("workers", r.workers);
    json.field("ops", r.ops);
    json.field("wall_seconds", r.wall_seconds, 4);
    json.field("ops_per_sec", r.ops_per_sec, 1);
    json.field("mean_us", r.mean_us, 2);
    json.field("p50_us", r.p50_us, 2);
    json.field("p95_us", r.p95_us, 2);
    json.field("p99_us", r.p99_us, 2);
    json.field("total_messages", r.total_messages);
    json.field("max_load", r.max_load);
    json.field("bottleneck", r.bottleneck);
    json.end_object();
  }
  json.end_array();
  json.begin_array("open_loop");
  for (const OpenRow& row : open_rows) {
    const ThroughputResult& r = row.res;
    json.begin_object();
    json.field("counter", r.counter);
    json.field("n", r.n);
    json.field("workers", r.workers);
    json.field("rate", row.rate, 1);
    json.field("shape", row.shape);
    json.field("ops_requested", row.requested);
    json.field("ops", r.ops);
    json.field("wall_seconds", r.wall_seconds, 4);
    json.field("ops_per_sec", r.ops_per_sec, 1);
    json.field("mean_us", r.mean_us, 2);
    json.field("p50_us", r.p50_us, 2);
    json.field("p95_us", r.p95_us, 2);
    json.field("p99_us", r.p99_us, 2);
    json.field("p999_us", r.p999_us, 2);
    json.field("p9999_us", r.p9999_us, 2);
    json.field("max_us", r.max_us, 2);
    json.field("slo_us", r.slo_us, 1);
    json.field("slo_ok", r.slo_ok);
    json.field("slo_den", r.slo_den);
    json.field("slo_attainment", r.slo_attainment, 6);
    json.field("hdr_recorder", r.hdr_recorder ? 1 : 0);
    json.field("hdr_overflow", r.hdr_overflow);
    json.field("record_threads", r.record_threads);
    json.field("total_messages", r.total_messages);
    json.field("max_load", r.max_load);
    json.end_object();
  }
  json.end_array();
  json.begin_array("concurrent");
  for (const ConcRow& row : conc_rows) {
    const ThroughputResult& r = row.res;
    json.begin_object();
    json.field("counter", r.counter);
    json.field("n", r.n);
    json.field("workers", r.workers);
    json.field("inflight", row.inflight);
    json.field("window", row.window);
    json.field("ops", r.ops);
    json.field("wall_seconds", r.wall_seconds, 4);
    json.field("ops_per_sec", r.ops_per_sec, 1);
    json.field("mean_us", r.mean_us, 2);
    json.field("p50_us", r.p50_us, 2);
    json.field("p99_us", r.p99_us, 2);
    json.field("p999_us", r.p999_us, 2);
    json.field("expected_linearizable", row.must_linearize ? 1 : 0);
    json.field("linearizable", r.linearizable ? 1 : 0);
    json.field("lin_violations", r.lin_violations);
    json.field("elastic_resizes", r.elastic_resizes);
    json.field("elastic_epochs", r.elastic_epochs);
    json.field("elastic_final_k", r.elastic_final_k);
    json.field("total_messages", r.total_messages);
    json.field("max_load", r.max_load);
    json.end_object();
  }
  json.end_array();
  json.begin_array("shm");
  for (const ShmRow& row : shm_rows) {
    const ThroughputResult& r = row.res;
    json.begin_object();
    json.field("counter", r.counter);
    json.field("mode", row.mode);
    json.field("loop", row.loop);
    json.field("threads", r.workers);
    json.field("inflight", row.inflight);
    json.field("placement", r.placement);
    json.field("pinned_workers", r.pinned_workers);
    json.field("placement_supported", r.placement_supported ? 1 : 0);
    json.field("rate", row.rate, 1);
    json.field("ops", r.ops);
    json.field("wall_seconds", r.wall_seconds, 4);
    json.field("ops_per_sec", r.ops_per_sec, 1);
    json.field("mean_us", r.mean_us, 2);
    json.field("p50_us", r.p50_us, 2);
    json.field("p99_us", r.p99_us, 2);
    json.field("linearizable", r.linearizable ? 1 : 0);
    json.field("lin_violations", r.lin_violations);
    json.field("record_threads", r.record_threads);
    json.end_object();
  }
  json.end_array();
  json.begin_array("scaling");
  for (const auto& [counter, row] : scaling) {
    if (row.w_hi <= row.w_lo || row.lo <= 0.0) continue;
    json.begin_object();
    json.field("counter", counter);
    json.field("workers_lo", row.w_lo);
    json.field("workers_hi", row.w_hi);
    json.field("ratio", row.hi / row.lo, 3);
    json.end_object();
  }
  json.end_array();
  return 0;
}
