// Shared plumbing for the bench binaries: comma-separated list parsing
// for flags and a minimal JSON emitter for the checked-in BENCH_*.json
// baselines. Every bench that writes a baseline goes through JsonWriter
// so the files share one shape:
//
//   {
//     "bench": "...", <scalar header fields>,
//     "<sweep>": [
//       {"k": 2, "max_load": 14, ...},
//       ...
//     ]
//   }
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "support/flags.hpp"

namespace dcnt {

/// Shared command-line entry for every bench binary. Handles `--help`
/// (prints the description and the accepted flags, exits 0) and
/// rejects flags outside `known` (prints the offender and the same
/// usage to stderr, exits 2); otherwise returns the parsed flags.
/// Every bench routes through this so a typo'd flag fails loudly
/// instead of silently running the default experiment.
Flags parse_bench_flags(int argc, char** argv, const std::string& description,
                        const std::vector<std::string>& known);

/// "2,3,4" -> {2, 3, 4}. Empty input yields an empty list.
std::vector<std::int64_t> parse_int_list(const std::string& text);

/// "0,0.05,0.2" -> {0.0, 0.05, 0.2}.
std::vector<double> parse_double_list(const std::string& text);

/// "tree,central" -> {"tree", "central"}.
std::vector<std::string> parse_string_list(const std::string& text);

/// Streaming writer for the flat JSON baselines the benches emit.
/// Top-level fields go one per line; array rows are single-line
/// objects. The destructor closes the file and announces the path, so
/// a bench just writes fields in order and returns.
class JsonWriter {
 public:
  /// Opens `path` for writing and emits the opening brace.
  /// DCNT_CHECK-fails if the file cannot be opened.
  explicit JsonWriter(std::string path);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void field(const std::string& key, double value, int precision = 3);
  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  template <typename T,
            typename std::enable_if<std::is_integral<T>::value, int>::type = 0>
  void field(const std::string& key, T value) {
    field_int(key, static_cast<long long>(value));
  }

  /// Starts a top-level array of row objects.
  void begin_array(const std::string& key);
  void end_array();

  /// Starts one single-line row object inside the current array.
  void begin_object();
  void end_object();

 private:
  void field_int(const std::string& key, long long value);
  /// Writes the separator + indentation owed before the next item and
  /// returns the FILE* for the value itself.
  std::FILE* pre_key(const std::string& key);

  std::FILE* f_{nullptr};
  std::string path_;
  bool in_array_{false};
  bool in_row_{false};
  bool first_at_top_{true};
  bool first_in_array_{true};
  bool first_in_row_{true};
};

}  // namespace dcnt
