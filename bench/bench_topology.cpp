// TOPO — stress-testing the model assumption behind the theorems. §2:
// "Any processor can exchange messages directly with any other
// processor." On sparse networks every logical message is relayed hop
// by hop and routers' sends/receives count, so the effective bottleneck
// degrades with the network diameter and with how traffic concentrates
// on cut nodes. Expected shape:
//   complete : the paper's O(k) for the tree, Theta(n) for central;
//   hypercube: x log n-ish inflation (diameter log n), tree still wins;
//   torus    : x sqrt(n)-ish inflation;
//   ring     : x n-ish inflation — the topology, not the algorithm,
//              becomes the bottleneck, for every counter.
//
// Flags: --k=3 --seed=8
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "analysis/report.hpp"
#include "baselines/central.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "TOPO: the point-to-point model assumption under constrained topologies",
      {"k", "seed"});
  const int k = static_cast<int>(flags.get_int("k", 3));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 8));

  TreeCounterParams params;
  params.k = k;
  const std::int64_t n = [&] {
    Simulator probe(std::make_unique<TreeCounter>(params), {});
    return static_cast<std::int64_t>(probe.num_processors());
  }();

  std::vector<std::shared_ptr<const Topology>> topologies;
  topologies.push_back(nullptr);  // the paper's complete network
  if ((n & (n - 1)) == 0) {
    // Hypercube routes may relay through any node whose bits mix the
    // endpoints', so it is only usable when the processor set fills it
    // exactly (n a power of two — k=2 and k=4 tree sizes qualify).
    topologies.push_back(std::make_shared<HypercubeTopology>(n));
  }
  topologies.push_back(std::make_shared<TorusTopology>(n));
  topologies.push_back(std::make_shared<RingTopology>(n));

  Table table({"counter", "topology", "n", "max_load", "mean_load",
               "total_msgs (hops)", "vs complete"});
  for (const bool central : {false, true}) {
    std::int64_t baseline_max = 0;
    for (const auto& topo : topologies) {
      SimConfig cfg;
      cfg.seed = seed;
      cfg.delay = DelayModel::uniform(1, 4);
      cfg.topology = topo;
      std::unique_ptr<CounterProtocol> counter;
      if (central) {
        counter = std::make_unique<CentralCounter>(n);
      } else {
        counter = std::make_unique<TreeCounter>(params);
      }
      Simulator sim(std::move(counter), cfg);
      run_sequential(sim, schedule_sequential(n));
      const LoadReport report = make_load_report(sim);
      if (topo == nullptr) baseline_max = report.max_load;
      table.row()
          .add(central ? "central" : "tree")
          .add(topo == nullptr ? "complete (paper)" : topo->name())
          .add(n)
          .add(report.max_load)
          .add(report.mean_load, 2)
          .add(report.total_messages)
          .add(static_cast<double>(report.max_load) /
                   static_cast<double>(baseline_max),
               2);
    }
  }
  table.print(std::cout,
              "TOPO: the §2 any-to-any assumption quantified — same "
              "protocols, routed networks, routers' load counted");
  std::cout << "\nshape: sparse networks inflate every design; the tree's "
               "O(k) is a statement about the complete network the paper "
               "assumes.\n";
  return 0;
}
