// FIG1-FIG4 — regenerates the paper's illustrative figures from real
// executions:
//
//   Figure 1: the process DAG of one inc (Graphviz DOT on stdout);
//   Figure 2: the same process as a topologically sorted communication
//             list;
//   Figure 3: the adversary's situation before an inc — the remaining
//             processors' candidate list lengths, longest first;
//   Figure 4: the communication tree structure with the initial
//             identifier scheme of §4.
//
// Flags: --k=2 --seed=2 --origin=5
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "analysis/adversary.hpp"
#include "analysis/dag.hpp"
#include "core/bound.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags = parse_bench_flags(
      argc, argv,
      "FIG1-FIG4: regenerate the paper's illustrative figures from real runs",
      {"k", "origin", "seed"});
  const int k = static_cast<int>(flags.get_int("k", 2));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2));
  const auto origin = static_cast<ProcessorId>(flags.get_int("origin", 5));

  TreeCounterParams params;
  params.k = k;
  SimConfig cfg;
  cfg.seed = seed;
  cfg.enable_trace = true;
  cfg.delay = DelayModel::uniform(1, 6);

  // Warm the system so the traced inc shows retirements (branching),
  // like the paper's Figure 1.
  Simulator sim(std::make_unique<TreeCounter>(params), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  std::vector<ProcessorId> warmup;
  for (ProcessorId p = 0; p < n; ++p) {
    if (p != origin) warmup.push_back(p);
  }
  run_sequential(sim, warmup);

  const OpId op = sim.begin_inc(origin);
  sim.run_until_quiescent();
  const IncDag dag = build_inc_dag(sim.trace(), op, origin);

  std::printf("== FIG1: process DAG of processor %d's inc (DOT) ==\n",
              origin);
  std::cout << to_dot(dag);

  std::printf("\n== FIG2: the same process as a communication list ==\n");
  const auto list = communication_list(dag);
  for (std::size_t i = 0; i < list.size(); ++i) {
    std::printf("%s%d", i == 0 ? "" : " -> ", list[i]);
  }
  std::printf("\nlist length (arcs) = %zu messages\n", list.size() - 1);

  std::printf(
      "\n== FIG3: adversary's view before an inc — candidate list lengths "
      "==\n");
  {
    SimConfig fig3_cfg = cfg;
    Simulator base(std::make_unique<TreeCounter>(params), fig3_cfg);
    // Half the sequence has run; probe every remaining candidate.
    std::vector<ProcessorId> first_half;
    for (ProcessorId p = 0; p < n / 2; ++p) first_half.push_back(p);
    run_sequential(base, first_half);
    Table table({"candidate", "list length (msgs of its inc)"});
    for (ProcessorId p = static_cast<ProcessorId>(n / 2); p < n; ++p) {
      Simulator probe(base);
      const std::int64_t before = probe.metrics().total_messages();
      const OpId probe_op = probe.begin_inc(p);
      probe.run_until_quiescent();
      (void)probe_op;
      table.row().add(static_cast<std::int64_t>(p)).add(
          probe.metrics().total_messages() - before);
    }
    std::cout << table.to_text();
    std::printf("(the §3 adversary picks a longest one)\n");
  }

  std::printf("\n== FIG4: communication tree structure and id scheme ==\n");
  {
    const TreeLayout layout(k);
    for (int level = 0; level <= k; ++level) {
      std::printf("level %d: ", level);
      const std::int64_t width = ipow(k, level);
      for (std::int64_t j = 0; j < width; ++j) {
        const NodeId node = layout.node_at(level, j);
        std::printf("[n%lld pid%d pool%lld]%s", static_cast<long long>(node),
                    layout.initial_pid(node),
                    static_cast<long long>(layout.pool_size(node)),
                    j + 1 == width ? "" : " ");
      }
      std::printf("\n");
    }
    std::printf("level %d (leaves): processors 0..%lld\n", k + 1,
                static_cast<long long>(layout.n() - 1));
  }
  return 0;
}
