# Empty dependencies file for bench_diffraction.
# This may be replaced when dependencies are built.
