file(REMOVE_RECURSE
  "CMakeFiles/bench_diffraction.dir/bench_diffraction.cpp.o"
  "CMakeFiles/bench_diffraction.dir/bench_diffraction.cpp.o.d"
  "bench_diffraction"
  "bench_diffraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diffraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
