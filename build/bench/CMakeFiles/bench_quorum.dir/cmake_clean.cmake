file(REMOVE_RECURSE
  "CMakeFiles/bench_quorum.dir/bench_quorum.cpp.o"
  "CMakeFiles/bench_quorum.dir/bench_quorum.cpp.o.d"
  "bench_quorum"
  "bench_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
