# Empty dependencies file for bench_generality.
# This may be replaced when dependencies are built.
