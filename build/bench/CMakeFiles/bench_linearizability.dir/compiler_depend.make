# Empty compiler generated dependencies file for bench_linearizability.
# This may be replaced when dependencies are built.
