file(REMOVE_RECURSE
  "CMakeFiles/bench_linearizability.dir/bench_linearizability.cpp.o"
  "CMakeFiles/bench_linearizability.dir/bench_linearizability.cpp.o.d"
  "bench_linearizability"
  "bench_linearizability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linearizability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
