file(REMOVE_RECURSE
  "CMakeFiles/test_diffracting.dir/test_diffracting.cpp.o"
  "CMakeFiles/test_diffracting.dir/test_diffracting.cpp.o.d"
  "test_diffracting"
  "test_diffracting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diffracting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
