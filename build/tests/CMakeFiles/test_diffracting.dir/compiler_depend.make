# Empty compiler generated dependencies file for test_diffracting.
# This may be replaced when dependencies are built.
