# Empty compiler generated dependencies file for test_counting_network.
# This may be replaced when dependencies are built.
