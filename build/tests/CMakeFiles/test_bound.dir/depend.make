# Empty dependencies file for test_bound.
# This may be replaced when dependencies are built.
