file(REMOVE_RECURSE
  "CMakeFiles/test_bound.dir/test_bound.cpp.o"
  "CMakeFiles/test_bound.dir/test_bound.cpp.o.d"
  "test_bound"
  "test_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
