file(REMOVE_RECURSE
  "CMakeFiles/test_tree_layout.dir/test_tree_layout.cpp.o"
  "CMakeFiles/test_tree_layout.dir/test_tree_layout.cpp.o.d"
  "test_tree_layout"
  "test_tree_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
