file(REMOVE_RECURSE
  "CMakeFiles/test_quorum_systems.dir/test_quorum_systems.cpp.o"
  "CMakeFiles/test_quorum_systems.dir/test_quorum_systems.cpp.o.d"
  "test_quorum_systems"
  "test_quorum_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quorum_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
