file(REMOVE_RECURSE
  "CMakeFiles/test_quorum_extensions.dir/test_quorum_extensions.cpp.o"
  "CMakeFiles/test_quorum_extensions.dir/test_quorum_extensions.cpp.o.d"
  "test_quorum_extensions"
  "test_quorum_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quorum_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
