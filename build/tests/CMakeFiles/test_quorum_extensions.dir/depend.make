# Empty dependencies file for test_quorum_extensions.
# This may be replaced when dependencies are built.
