file(REMOVE_RECURSE
  "CMakeFiles/test_table_flags.dir/test_table_flags.cpp.o"
  "CMakeFiles/test_table_flags.dir/test_table_flags.cpp.o.d"
  "test_table_flags"
  "test_table_flags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
