# Empty dependencies file for test_table_flags.
# This may be replaced when dependencies are built.
