# Empty compiler generated dependencies file for test_tree_counter.
# This may be replaced when dependencies are built.
