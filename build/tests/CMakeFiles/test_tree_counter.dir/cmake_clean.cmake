file(REMOVE_RECURSE
  "CMakeFiles/test_tree_counter.dir/test_tree_counter.cpp.o"
  "CMakeFiles/test_tree_counter.dir/test_tree_counter.cpp.o.d"
  "test_tree_counter"
  "test_tree_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
