# Empty dependencies file for test_tree_lemmas.
# This may be replaced when dependencies are built.
