file(REMOVE_RECURSE
  "CMakeFiles/test_tree_lemmas.dir/test_tree_lemmas.cpp.o"
  "CMakeFiles/test_tree_lemmas.dir/test_tree_lemmas.cpp.o.d"
  "test_tree_lemmas"
  "test_tree_lemmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_lemmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
