file(REMOVE_RECURSE
  "CMakeFiles/test_tree_services.dir/test_tree_services.cpp.o"
  "CMakeFiles/test_tree_services.dir/test_tree_services.cpp.o.d"
  "test_tree_services"
  "test_tree_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
