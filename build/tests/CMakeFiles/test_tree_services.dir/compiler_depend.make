# Empty compiler generated dependencies file for test_tree_services.
# This may be replaced when dependencies are built.
