file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_runner.dir/test_schedule_runner.cpp.o"
  "CMakeFiles/test_schedule_runner.dir/test_schedule_runner.cpp.o.d"
  "test_schedule_runner"
  "test_schedule_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
