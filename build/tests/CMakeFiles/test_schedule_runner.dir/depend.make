# Empty dependencies file for test_schedule_runner.
# This may be replaced when dependencies are built.
