file(REMOVE_RECURSE
  "CMakeFiles/test_combining.dir/test_combining.cpp.o"
  "CMakeFiles/test_combining.dir/test_combining.cpp.o.d"
  "test_combining"
  "test_combining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
