# Empty dependencies file for test_quorum_counter.
# This may be replaced when dependencies are built.
