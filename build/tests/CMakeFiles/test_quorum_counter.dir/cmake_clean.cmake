file(REMOVE_RECURSE
  "CMakeFiles/test_quorum_counter.dir/test_quorum_counter.cpp.o"
  "CMakeFiles/test_quorum_counter.dir/test_quorum_counter.cpp.o.d"
  "test_quorum_counter"
  "test_quorum_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quorum_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
