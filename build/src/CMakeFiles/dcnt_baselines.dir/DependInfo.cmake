
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/central.cpp" "src/CMakeFiles/dcnt_baselines.dir/baselines/central.cpp.o" "gcc" "src/CMakeFiles/dcnt_baselines.dir/baselines/central.cpp.o.d"
  "/root/repo/src/baselines/combining_tree.cpp" "src/CMakeFiles/dcnt_baselines.dir/baselines/combining_tree.cpp.o" "gcc" "src/CMakeFiles/dcnt_baselines.dir/baselines/combining_tree.cpp.o.d"
  "/root/repo/src/baselines/counting_network.cpp" "src/CMakeFiles/dcnt_baselines.dir/baselines/counting_network.cpp.o" "gcc" "src/CMakeFiles/dcnt_baselines.dir/baselines/counting_network.cpp.o.d"
  "/root/repo/src/baselines/diffracting_tree.cpp" "src/CMakeFiles/dcnt_baselines.dir/baselines/diffracting_tree.cpp.o" "gcc" "src/CMakeFiles/dcnt_baselines.dir/baselines/diffracting_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcnt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
