# Empty compiler generated dependencies file for dcnt_baselines.
# This may be replaced when dependencies are built.
