file(REMOVE_RECURSE
  "CMakeFiles/dcnt_baselines.dir/baselines/central.cpp.o"
  "CMakeFiles/dcnt_baselines.dir/baselines/central.cpp.o.d"
  "CMakeFiles/dcnt_baselines.dir/baselines/combining_tree.cpp.o"
  "CMakeFiles/dcnt_baselines.dir/baselines/combining_tree.cpp.o.d"
  "CMakeFiles/dcnt_baselines.dir/baselines/counting_network.cpp.o"
  "CMakeFiles/dcnt_baselines.dir/baselines/counting_network.cpp.o.d"
  "CMakeFiles/dcnt_baselines.dir/baselines/diffracting_tree.cpp.o"
  "CMakeFiles/dcnt_baselines.dir/baselines/diffracting_tree.cpp.o.d"
  "libdcnt_baselines.a"
  "libdcnt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
