file(REMOVE_RECURSE
  "libdcnt_baselines.a"
)
