# Empty dependencies file for dcnt_sim.
# This may be replaced when dependencies are built.
