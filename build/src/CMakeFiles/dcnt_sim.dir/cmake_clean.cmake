file(REMOVE_RECURSE
  "CMakeFiles/dcnt_sim.dir/sim/delay.cpp.o"
  "CMakeFiles/dcnt_sim.dir/sim/delay.cpp.o.d"
  "CMakeFiles/dcnt_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/dcnt_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/dcnt_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/dcnt_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/dcnt_sim.dir/sim/topology.cpp.o"
  "CMakeFiles/dcnt_sim.dir/sim/topology.cpp.o.d"
  "CMakeFiles/dcnt_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/dcnt_sim.dir/sim/trace.cpp.o.d"
  "libdcnt_sim.a"
  "libdcnt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
