file(REMOVE_RECURSE
  "libdcnt_sim.a"
)
