file(REMOVE_RECURSE
  "libdcnt_analysis.a"
)
