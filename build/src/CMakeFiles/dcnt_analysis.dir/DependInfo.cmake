
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/adversary.cpp" "src/CMakeFiles/dcnt_analysis.dir/analysis/adversary.cpp.o" "gcc" "src/CMakeFiles/dcnt_analysis.dir/analysis/adversary.cpp.o.d"
  "/root/repo/src/analysis/audit.cpp" "src/CMakeFiles/dcnt_analysis.dir/analysis/audit.cpp.o" "gcc" "src/CMakeFiles/dcnt_analysis.dir/analysis/audit.cpp.o.d"
  "/root/repo/src/analysis/concentration.cpp" "src/CMakeFiles/dcnt_analysis.dir/analysis/concentration.cpp.o" "gcc" "src/CMakeFiles/dcnt_analysis.dir/analysis/concentration.cpp.o.d"
  "/root/repo/src/analysis/dag.cpp" "src/CMakeFiles/dcnt_analysis.dir/analysis/dag.cpp.o" "gcc" "src/CMakeFiles/dcnt_analysis.dir/analysis/dag.cpp.o.d"
  "/root/repo/src/analysis/explore.cpp" "src/CMakeFiles/dcnt_analysis.dir/analysis/explore.cpp.o" "gcc" "src/CMakeFiles/dcnt_analysis.dir/analysis/explore.cpp.o.d"
  "/root/repo/src/analysis/hotspot.cpp" "src/CMakeFiles/dcnt_analysis.dir/analysis/hotspot.cpp.o" "gcc" "src/CMakeFiles/dcnt_analysis.dir/analysis/hotspot.cpp.o.d"
  "/root/repo/src/analysis/latency.cpp" "src/CMakeFiles/dcnt_analysis.dir/analysis/latency.cpp.o" "gcc" "src/CMakeFiles/dcnt_analysis.dir/analysis/latency.cpp.o.d"
  "/root/repo/src/analysis/linearizability.cpp" "src/CMakeFiles/dcnt_analysis.dir/analysis/linearizability.cpp.o" "gcc" "src/CMakeFiles/dcnt_analysis.dir/analysis/linearizability.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/dcnt_analysis.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/dcnt_analysis.dir/analysis/report.cpp.o.d"
  "/root/repo/src/analysis/tree_profile.cpp" "src/CMakeFiles/dcnt_analysis.dir/analysis/tree_profile.cpp.o" "gcc" "src/CMakeFiles/dcnt_analysis.dir/analysis/tree_profile.cpp.o.d"
  "/root/repo/src/analysis/weights.cpp" "src/CMakeFiles/dcnt_analysis.dir/analysis/weights.cpp.o" "gcc" "src/CMakeFiles/dcnt_analysis.dir/analysis/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcnt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
