# Empty dependencies file for dcnt_analysis.
# This may be replaced when dependencies are built.
