file(REMOVE_RECURSE
  "CMakeFiles/dcnt_analysis.dir/analysis/adversary.cpp.o"
  "CMakeFiles/dcnt_analysis.dir/analysis/adversary.cpp.o.d"
  "CMakeFiles/dcnt_analysis.dir/analysis/audit.cpp.o"
  "CMakeFiles/dcnt_analysis.dir/analysis/audit.cpp.o.d"
  "CMakeFiles/dcnt_analysis.dir/analysis/concentration.cpp.o"
  "CMakeFiles/dcnt_analysis.dir/analysis/concentration.cpp.o.d"
  "CMakeFiles/dcnt_analysis.dir/analysis/dag.cpp.o"
  "CMakeFiles/dcnt_analysis.dir/analysis/dag.cpp.o.d"
  "CMakeFiles/dcnt_analysis.dir/analysis/explore.cpp.o"
  "CMakeFiles/dcnt_analysis.dir/analysis/explore.cpp.o.d"
  "CMakeFiles/dcnt_analysis.dir/analysis/hotspot.cpp.o"
  "CMakeFiles/dcnt_analysis.dir/analysis/hotspot.cpp.o.d"
  "CMakeFiles/dcnt_analysis.dir/analysis/latency.cpp.o"
  "CMakeFiles/dcnt_analysis.dir/analysis/latency.cpp.o.d"
  "CMakeFiles/dcnt_analysis.dir/analysis/linearizability.cpp.o"
  "CMakeFiles/dcnt_analysis.dir/analysis/linearizability.cpp.o.d"
  "CMakeFiles/dcnt_analysis.dir/analysis/report.cpp.o"
  "CMakeFiles/dcnt_analysis.dir/analysis/report.cpp.o.d"
  "CMakeFiles/dcnt_analysis.dir/analysis/tree_profile.cpp.o"
  "CMakeFiles/dcnt_analysis.dir/analysis/tree_profile.cpp.o.d"
  "CMakeFiles/dcnt_analysis.dir/analysis/weights.cpp.o"
  "CMakeFiles/dcnt_analysis.dir/analysis/weights.cpp.o.d"
  "libdcnt_analysis.a"
  "libdcnt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
