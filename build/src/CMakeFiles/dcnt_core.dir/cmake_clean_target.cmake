file(REMOVE_RECURSE
  "libdcnt_core.a"
)
