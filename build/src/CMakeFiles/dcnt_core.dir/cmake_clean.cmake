file(REMOVE_RECURSE
  "CMakeFiles/dcnt_core.dir/core/bound.cpp.o"
  "CMakeFiles/dcnt_core.dir/core/bound.cpp.o.d"
  "CMakeFiles/dcnt_core.dir/core/tree_bit.cpp.o"
  "CMakeFiles/dcnt_core.dir/core/tree_bit.cpp.o.d"
  "CMakeFiles/dcnt_core.dir/core/tree_counter.cpp.o"
  "CMakeFiles/dcnt_core.dir/core/tree_counter.cpp.o.d"
  "CMakeFiles/dcnt_core.dir/core/tree_layout.cpp.o"
  "CMakeFiles/dcnt_core.dir/core/tree_layout.cpp.o.d"
  "CMakeFiles/dcnt_core.dir/core/tree_pq.cpp.o"
  "CMakeFiles/dcnt_core.dir/core/tree_pq.cpp.o.d"
  "CMakeFiles/dcnt_core.dir/core/tree_service.cpp.o"
  "CMakeFiles/dcnt_core.dir/core/tree_service.cpp.o.d"
  "libdcnt_core.a"
  "libdcnt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
