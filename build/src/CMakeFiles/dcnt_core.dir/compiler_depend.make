# Empty compiler generated dependencies file for dcnt_core.
# This may be replaced when dependencies are built.
