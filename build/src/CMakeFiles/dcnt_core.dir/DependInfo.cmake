
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bound.cpp" "src/CMakeFiles/dcnt_core.dir/core/bound.cpp.o" "gcc" "src/CMakeFiles/dcnt_core.dir/core/bound.cpp.o.d"
  "/root/repo/src/core/tree_bit.cpp" "src/CMakeFiles/dcnt_core.dir/core/tree_bit.cpp.o" "gcc" "src/CMakeFiles/dcnt_core.dir/core/tree_bit.cpp.o.d"
  "/root/repo/src/core/tree_counter.cpp" "src/CMakeFiles/dcnt_core.dir/core/tree_counter.cpp.o" "gcc" "src/CMakeFiles/dcnt_core.dir/core/tree_counter.cpp.o.d"
  "/root/repo/src/core/tree_layout.cpp" "src/CMakeFiles/dcnt_core.dir/core/tree_layout.cpp.o" "gcc" "src/CMakeFiles/dcnt_core.dir/core/tree_layout.cpp.o.d"
  "/root/repo/src/core/tree_pq.cpp" "src/CMakeFiles/dcnt_core.dir/core/tree_pq.cpp.o" "gcc" "src/CMakeFiles/dcnt_core.dir/core/tree_pq.cpp.o.d"
  "/root/repo/src/core/tree_service.cpp" "src/CMakeFiles/dcnt_core.dir/core/tree_service.cpp.o" "gcc" "src/CMakeFiles/dcnt_core.dir/core/tree_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcnt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
