# Empty compiler generated dependencies file for dcnt_support.
# This may be replaced when dependencies are built.
