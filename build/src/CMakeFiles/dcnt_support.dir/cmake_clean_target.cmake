file(REMOVE_RECURSE
  "libdcnt_support.a"
)
