file(REMOVE_RECURSE
  "CMakeFiles/dcnt_support.dir/support/flags.cpp.o"
  "CMakeFiles/dcnt_support.dir/support/flags.cpp.o.d"
  "CMakeFiles/dcnt_support.dir/support/rng.cpp.o"
  "CMakeFiles/dcnt_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/dcnt_support.dir/support/stats.cpp.o"
  "CMakeFiles/dcnt_support.dir/support/stats.cpp.o.d"
  "CMakeFiles/dcnt_support.dir/support/table.cpp.o"
  "CMakeFiles/dcnt_support.dir/support/table.cpp.o.d"
  "libdcnt_support.a"
  "libdcnt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
