# Empty dependencies file for dcnt_harness.
# This may be replaced when dependencies are built.
