file(REMOVE_RECURSE
  "libdcnt_harness.a"
)
