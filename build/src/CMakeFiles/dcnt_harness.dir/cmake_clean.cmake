file(REMOVE_RECURSE
  "CMakeFiles/dcnt_harness.dir/harness/factory.cpp.o"
  "CMakeFiles/dcnt_harness.dir/harness/factory.cpp.o.d"
  "CMakeFiles/dcnt_harness.dir/harness/runner.cpp.o"
  "CMakeFiles/dcnt_harness.dir/harness/runner.cpp.o.d"
  "CMakeFiles/dcnt_harness.dir/harness/schedule.cpp.o"
  "CMakeFiles/dcnt_harness.dir/harness/schedule.cpp.o.d"
  "libdcnt_harness.a"
  "libdcnt_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnt_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
