# Empty dependencies file for dcnt_quorum.
# This may be replaced when dependencies are built.
