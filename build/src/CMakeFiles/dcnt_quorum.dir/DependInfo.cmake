
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quorum/crumbling_wall.cpp" "src/CMakeFiles/dcnt_quorum.dir/quorum/crumbling_wall.cpp.o" "gcc" "src/CMakeFiles/dcnt_quorum.dir/quorum/crumbling_wall.cpp.o.d"
  "/root/repo/src/quorum/grid.cpp" "src/CMakeFiles/dcnt_quorum.dir/quorum/grid.cpp.o" "gcc" "src/CMakeFiles/dcnt_quorum.dir/quorum/grid.cpp.o.d"
  "/root/repo/src/quorum/hierarchical.cpp" "src/CMakeFiles/dcnt_quorum.dir/quorum/hierarchical.cpp.o" "gcc" "src/CMakeFiles/dcnt_quorum.dir/quorum/hierarchical.cpp.o.d"
  "/root/repo/src/quorum/majority.cpp" "src/CMakeFiles/dcnt_quorum.dir/quorum/majority.cpp.o" "gcc" "src/CMakeFiles/dcnt_quorum.dir/quorum/majority.cpp.o.d"
  "/root/repo/src/quorum/probe.cpp" "src/CMakeFiles/dcnt_quorum.dir/quorum/probe.cpp.o" "gcc" "src/CMakeFiles/dcnt_quorum.dir/quorum/probe.cpp.o.d"
  "/root/repo/src/quorum/projective_plane.cpp" "src/CMakeFiles/dcnt_quorum.dir/quorum/projective_plane.cpp.o" "gcc" "src/CMakeFiles/dcnt_quorum.dir/quorum/projective_plane.cpp.o.d"
  "/root/repo/src/quorum/quorum_analysis.cpp" "src/CMakeFiles/dcnt_quorum.dir/quorum/quorum_analysis.cpp.o" "gcc" "src/CMakeFiles/dcnt_quorum.dir/quorum/quorum_analysis.cpp.o.d"
  "/root/repo/src/quorum/quorum_counter.cpp" "src/CMakeFiles/dcnt_quorum.dir/quorum/quorum_counter.cpp.o" "gcc" "src/CMakeFiles/dcnt_quorum.dir/quorum/quorum_counter.cpp.o.d"
  "/root/repo/src/quorum/quorum_system.cpp" "src/CMakeFiles/dcnt_quorum.dir/quorum/quorum_system.cpp.o" "gcc" "src/CMakeFiles/dcnt_quorum.dir/quorum/quorum_system.cpp.o.d"
  "/root/repo/src/quorum/tree_quorum.cpp" "src/CMakeFiles/dcnt_quorum.dir/quorum/tree_quorum.cpp.o" "gcc" "src/CMakeFiles/dcnt_quorum.dir/quorum/tree_quorum.cpp.o.d"
  "/root/repo/src/quorum/weighted.cpp" "src/CMakeFiles/dcnt_quorum.dir/quorum/weighted.cpp.o" "gcc" "src/CMakeFiles/dcnt_quorum.dir/quorum/weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcnt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
