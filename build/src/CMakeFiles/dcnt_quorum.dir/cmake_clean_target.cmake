file(REMOVE_RECURSE
  "libdcnt_quorum.a"
)
