file(REMOVE_RECURSE
  "CMakeFiles/dcnt_quorum.dir/quorum/crumbling_wall.cpp.o"
  "CMakeFiles/dcnt_quorum.dir/quorum/crumbling_wall.cpp.o.d"
  "CMakeFiles/dcnt_quorum.dir/quorum/grid.cpp.o"
  "CMakeFiles/dcnt_quorum.dir/quorum/grid.cpp.o.d"
  "CMakeFiles/dcnt_quorum.dir/quorum/hierarchical.cpp.o"
  "CMakeFiles/dcnt_quorum.dir/quorum/hierarchical.cpp.o.d"
  "CMakeFiles/dcnt_quorum.dir/quorum/majority.cpp.o"
  "CMakeFiles/dcnt_quorum.dir/quorum/majority.cpp.o.d"
  "CMakeFiles/dcnt_quorum.dir/quorum/probe.cpp.o"
  "CMakeFiles/dcnt_quorum.dir/quorum/probe.cpp.o.d"
  "CMakeFiles/dcnt_quorum.dir/quorum/projective_plane.cpp.o"
  "CMakeFiles/dcnt_quorum.dir/quorum/projective_plane.cpp.o.d"
  "CMakeFiles/dcnt_quorum.dir/quorum/quorum_analysis.cpp.o"
  "CMakeFiles/dcnt_quorum.dir/quorum/quorum_analysis.cpp.o.d"
  "CMakeFiles/dcnt_quorum.dir/quorum/quorum_counter.cpp.o"
  "CMakeFiles/dcnt_quorum.dir/quorum/quorum_counter.cpp.o.d"
  "CMakeFiles/dcnt_quorum.dir/quorum/quorum_system.cpp.o"
  "CMakeFiles/dcnt_quorum.dir/quorum/quorum_system.cpp.o.d"
  "CMakeFiles/dcnt_quorum.dir/quorum/tree_quorum.cpp.o"
  "CMakeFiles/dcnt_quorum.dir/quorum/tree_quorum.cpp.o.d"
  "CMakeFiles/dcnt_quorum.dir/quorum/weighted.cpp.o"
  "CMakeFiles/dcnt_quorum.dir/quorum/weighted.cpp.o.d"
  "libdcnt_quorum.a"
  "libdcnt_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnt_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
