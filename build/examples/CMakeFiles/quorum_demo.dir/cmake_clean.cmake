file(REMOVE_RECURSE
  "CMakeFiles/quorum_demo.dir/quorum_demo.cpp.o"
  "CMakeFiles/quorum_demo.dir/quorum_demo.cpp.o.d"
  "quorum_demo"
  "quorum_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
