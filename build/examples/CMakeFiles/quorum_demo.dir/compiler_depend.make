# Empty compiler generated dependencies file for quorum_demo.
# This may be replaced when dependencies are built.
