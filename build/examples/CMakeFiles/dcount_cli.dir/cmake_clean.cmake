file(REMOVE_RECURSE
  "CMakeFiles/dcount_cli.dir/dcount_cli.cpp.o"
  "CMakeFiles/dcount_cli.dir/dcount_cli.cpp.o.d"
  "dcount_cli"
  "dcount_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcount_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
