# Empty compiler generated dependencies file for dcount_cli.
# This may be replaced when dependencies are built.
