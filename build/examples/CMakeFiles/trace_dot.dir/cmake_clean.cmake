file(REMOVE_RECURSE
  "CMakeFiles/trace_dot.dir/trace_dot.cpp.o"
  "CMakeFiles/trace_dot.dir/trace_dot.cpp.o.d"
  "trace_dot"
  "trace_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
