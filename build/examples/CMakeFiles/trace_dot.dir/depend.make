# Empty dependencies file for trace_dot.
# This may be replaced when dependencies are built.
