# Empty compiler generated dependencies file for ticket_lock.
# This may be replaced when dependencies are built.
