file(REMOVE_RECURSE
  "CMakeFiles/ticket_lock.dir/ticket_lock.cpp.o"
  "CMakeFiles/ticket_lock.dir/ticket_lock.cpp.o.d"
  "ticket_lock"
  "ticket_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticket_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
