# Empty dependencies file for task_dispenser.
# This may be replaced when dependencies are built.
