file(REMOVE_RECURSE
  "CMakeFiles/task_dispenser.dir/task_dispenser.cpp.o"
  "CMakeFiles/task_dispenser.dir/task_dispenser.cpp.o.d"
  "task_dispenser"
  "task_dispenser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_dispenser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
