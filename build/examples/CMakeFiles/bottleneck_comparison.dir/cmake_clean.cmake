file(REMOVE_RECURSE
  "CMakeFiles/bottleneck_comparison.dir/bottleneck_comparison.cpp.o"
  "CMakeFiles/bottleneck_comparison.dir/bottleneck_comparison.cpp.o.d"
  "bottleneck_comparison"
  "bottleneck_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottleneck_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
