
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/bottleneck_comparison.cpp" "examples/CMakeFiles/bottleneck_comparison.dir/bottleneck_comparison.cpp.o" "gcc" "examples/CMakeFiles/bottleneck_comparison.dir/bottleneck_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcnt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcnt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
