# Empty dependencies file for bottleneck_comparison.
# This may be replaced when dependencies are built.
