// Reproduce the paper's Figure 1 for any run: trace an inc operation
// and emit its process DAG as Graphviz DOT (pipe into `dot -Tpng`),
// plus the Figure 2 communication list and the participant set I_p.
// With --chrome, emit the whole run's trace as Chrome trace-event JSON
// instead (load into chrome://tracing or ui.perfetto.dev).
//
//   $ ./examples/trace_dot [--k=2] [--origin=3] [--warmup=7] [--chrome]
#include <cstdio>
#include <iostream>

#include "dcnt.hpp"

int main(int argc, char** argv) {
  using namespace dcnt;
  const Flags flags(argc, argv);
  const int k = static_cast<int>(flags.get_int("k", 2));
  const auto origin = static_cast<ProcessorId>(flags.get_int("origin", 3));
  const std::int64_t warmup = flags.get_int("warmup", 7);

  TreeCounterParams params;
  params.k = k;
  SimConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 6));
  cfg.enable_trace = true;
  cfg.delay = DelayModel::uniform(1, 6);
  Simulator sim(std::make_unique<TreeCounter>(params), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());

  // Warm up so ages are high enough for the traced inc to trigger
  // retirements — that is when the DAG branches like Figure 1.
  std::vector<ProcessorId> order;
  for (std::int64_t i = 0; i < std::min(warmup, n); ++i) {
    if (static_cast<ProcessorId>(i) != origin) {
      order.push_back(static_cast<ProcessorId>(i));
    }
  }
  run_sequential(sim, order);

  const OpId op = sim.begin_inc(origin);
  sim.run_until_quiescent();
  std::fprintf(stderr, "inc by processor %d returned %lld\n", origin,
               static_cast<long long>(*sim.result(op)));

  if (flags.get_bool("chrome", false)) {
    std::cout << to_chrome_trace(sim.trace());
    return 0;
  }

  const IncDag dag = build_inc_dag(sim.trace(), op, origin);
  std::cout << to_dot(dag);  // stdout: pipe into graphviz

  const auto list = communication_list(dag);
  std::fprintf(stderr, "\ncommunication list (Figure 2): ");
  for (std::size_t i = 0; i < list.size(); ++i) {
    std::fprintf(stderr, "%s%d", i == 0 ? "" : " -> ", list[i]);
  }
  std::fprintf(stderr, "\nlist length = %zu messages\n", list.size() - 1);

  const auto I_p = participants(sim.trace(), op, origin);
  std::fprintf(stderr, "participants I_p (%zu processors): {", I_p.size());
  for (std::size_t i = 0; i < I_p.size(); ++i) {
    std::fprintf(stderr, "%s%d", i == 0 ? "" : ", ", I_p[i]);
  }
  std::fprintf(stderr, "}\n");
  return 0;
}
