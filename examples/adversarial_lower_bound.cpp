// Watch the §3 lower-bound adversary work: at every step it dry-runs
// each remaining processor's inc on a snapshot of the whole system and
// commits the one with the longest communication list.
//
//   $ ./examples/adversarial_lower_bound [--counter=tree] [--n=64]
//     [--verbose]
#include <cstdio>
#include <iostream>

#include "dcnt.hpp"

int main(int argc, char** argv) {
  using namespace dcnt;
  const Flags flags(argc, argv);
  const std::string kind_name = flags.get_string("counter", "tree");
  const std::int64_t n = flags.get_int("n", 64);
  const bool verbose = flags.get_bool("verbose", false);

  const CounterKind kind = counter_kind_from_string(kind_name);
  SimConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 23));
  Simulator base(make_counter(kind, n), cfg);
  std::printf("adversary vs %s on n=%zu processors\n",
              base.counter().name().c_str(), base.num_processors());

  const AdversaryResult result = run_adversarial_sequence(base);
  if (verbose) {
    for (std::size_t i = 0; i < result.steps.size(); ++i) {
      std::printf("step %3zu: chose processor %4d (process of %lld messages)\n",
                  i, result.steps[i].chosen,
                  static_cast<long long>(result.steps[i].messages));
    }
  }
  std::printf(
      "\nadversarial sequence done.\n"
      "bottleneck processor %d carried %lld messages; paper's lower bound "
      "says some processor must carry Omega(k) = Omega(%.2f).\n"
      "the proof's witness (last processor %d) carried %lld.\n",
      result.bottleneck, static_cast<long long>(result.max_load),
      result.paper_k, result.last_processor,
      static_cast<long long>(result.last_processor_load));
  std::printf("\ntry --counter=central or --counter=quorum-grid to see other "
              "implementations pay the bound too.\n");
  return 0;
}
