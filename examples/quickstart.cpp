// Quickstart: build the paper's distributed counter, run the paper's
// workload (every processor increments once), and look at the numbers
// the paper is about.
//
//   $ ./examples/quickstart [--k=3] [--seed=1]
#include <cstdio>
#include <memory>

#include "dcnt.hpp"

int main(int argc, char** argv) {
  using namespace dcnt;
  const Flags flags(argc, argv);
  const int k = static_cast<int>(flags.get_int("k", 3));

  // 1. The counter: a communication tree with fan-out k serving
  //    n = k^(k+1) processors, inner nodes retiring after O(k) messages.
  TreeCounterParams params;
  params.k = k;
  auto counter = std::make_unique<TreeCounter>(params);

  // 2. The world: an asynchronous message-passing network. Delays are
  //    random but reproducible from the seed; correctness never depends
  //    on them.
  SimConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.delay = DelayModel::uniform(1, 10);
  Simulator sim(std::move(counter), config);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  std::printf("tree counter with k=%d on n=%lld processors\n", k,
              static_cast<long long>(n));

  // 3. One inc, by hand.
  const OpId op = sim.begin_inc(/*origin=*/7);
  sim.run_until_quiescent();
  std::printf("processor 7 incremented and got value %lld\n",
              static_cast<long long>(*sim.result(op)));

  // 4. The paper's full workload: every processor increments exactly
  //    once (operations are sequential in the paper's model).
  std::vector<ProcessorId> rest;
  for (ProcessorId p = 0; p < n; ++p) {
    if (p != 7) rest.push_back(p);
  }
  const RunResult result = run_sequential(sim, rest);
  std::printf("ran %zu more incs; all values distinct and in order: %s\n",
              result.values.size(), result.values_ok ? "yes" : "NO");

  // 5. What the theorems talk about: the message load m_p of the
  //    busiest processor.
  const LoadReport report = make_load_report(sim);
  std::printf(
      "\nbottleneck processor %d handled %lld messages\n"
      "paper's bound: Theta(k) with k = %.2f  ->  max_load / k = %.1f\n"
      "mean load %.2f, p99 %lld, total messages %lld\n",
      report.bottleneck, static_cast<long long>(report.max_load),
      report.paper_k, report.load_per_k, report.mean_load,
      static_cast<long long>(report.p99),
      static_cast<long long>(report.total_messages));

  // 6. For contrast: the centralized strawman from the introduction.
  Simulator central(std::make_unique<CentralCounter>(n), config);
  run_sequential(central, schedule_sequential(n));
  std::printf(
      "\ncentral counter on the same n: bottleneck load %lld (Theta(n))\n"
      "tree beats it by %.0fx — and no counter can beat Omega(k).\n",
      static_cast<long long>(central.metrics().max_load()),
      static_cast<double>(central.metrics().max_load()) /
          static_cast<double>(report.max_load));
  return 0;
}
