// Distributed ticket lock — mutual exclusion built on nothing but a
// distributed counter, the kind of "algorithm that counts" the paper's
// introduction says makes its bound ubiquitous.
//
// Each contender draws a ticket with inc(); tickets are distinct and
// ordered, so serving contenders in ticket order IS mutual exclusion
// with FIFO fairness. The choice of counter decides who melts: a
// central dispenser concentrates Theta(contenders) messages on one
// processor, the paper's tree spreads the same protocol at O(k).
//
//   $ ./examples/ticket_lock [--n=81] [--rounds=2] [--counter=tree]
#include <cstdio>
#include <iostream>
#include <algorithm>
#include <memory>

#include "dcnt.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::int64_t n = flags.get_int("n", 81);
  const std::int64_t rounds = flags.get_int("rounds", 2);
  const CounterKind kind =
      counter_kind_from_string(flags.get_string("counter", "tree"));

  SimConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  cfg.delay = DelayModel::uniform(1, 8);
  Simulator sim(make_counter(kind, n), cfg);
  const auto actual_n = static_cast<std::int64_t>(sim.num_processors());

  std::printf("ticket lock over %s on %lld processors, %lld acquisition "
              "rounds\n\n",
              sim.counter().name().c_str(), static_cast<long long>(actual_n),
              static_cast<long long>(rounds));

  // Every processor acquires the lock `rounds` times: draw a ticket
  // (one inc each). Ticket order = service order; distinctness of
  // counter values is exactly lock safety.
  Rng rng(cfg.seed + 1);
  std::vector<std::pair<Value, ProcessorId>> service_order;
  for (std::int64_t r = 0; r < rounds; ++r) {
    const auto order = schedule_permutation(actual_n, rng);
    for (const ProcessorId p : order) {
      const OpId op = sim.begin_inc(p);
      sim.run_until_quiescent();
      service_order.emplace_back(*sim.result(op), p);
    }
  }

  // Safety + fairness audit: tickets are exactly 0..m-1, each held by
  // one contender, served in draw order.
  std::sort(service_order.begin(), service_order.end());
  bool safe = true;
  for (std::size_t i = 0; i < service_order.size(); ++i) {
    if (service_order[i].first != static_cast<Value>(i)) safe = false;
  }
  std::printf("lock safety (tickets distinct & gap-free): %s\n",
              safe ? "yes" : "VIOLATED");
  std::printf("FIFO fairness: service order = ticket order by "
              "construction\n\n");

  const LoadReport report = make_load_report(sim);
  std::printf(
      "ticket-dispenser traffic: %lld messages total\n"
      "busiest processor: %d with %lld messages (%.1f per acquisition)\n"
      "paper bound for this n: k = %.2f -> any dispenser pays Omega(k)\n",
      static_cast<long long>(report.total_messages), report.bottleneck,
      static_cast<long long>(report.max_load),
      static_cast<double>(report.max_load) /
          static_cast<double>(service_order.size()),
      report.paper_k);

  if (kind == CounterKind::kTree) {
    std::printf("\ntry --counter=central to watch the dispenser become the "
                "lock's bottleneck.\n");
  }
  return 0;
}
