// Swiss-army experiment driver: pick a counter, a workload, a delivery
// regime and a topology from the command line; get the full report.
//
//   $ ./examples/dcount_cli --counter=tree --n=81 --workload=permutation
//   $ ./examples/dcount_cli --counter=central --n=256 --topology=ring
//   $ ./examples/dcount_cli --counter=counting-net --n=64 \
//         --workload=zipf --zipf=0.9 --ops=500 --delay=heavy --seed=7
//
// Flags (all optional):
//   --counter=tree|static-tree|central|combining|counting-net|
//             diffracting|quorum-majority|quorum-grid        [tree]
//   --n=<min processors>                                      [81]
//   --workload=sequential|reverse|permutation|uniform|zipf|single [sequential]
//   --ops=<operations, for uniform/zipf/single>               [n]
//   --zipf=<skew>                                             [0.8]
//   --delay=fixed|uniform|heavy                               [uniform]
//   --delay_max=<max delay>                                   [8]
//   --fifo                                                    [off]
//   --topology=complete|ring|torus|hypercube                  [complete]
//   --seed=<seed>                                             [1]
//   --histogram                                               [off]
#include <cstdio>
#include <iostream>

#include "dcnt.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const CounterKind kind =
      counter_kind_from_string(flags.get_string("counter", "tree"));
  const std::int64_t min_n = flags.get_int("n", 81);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  SimConfig cfg;
  cfg.seed = seed;
  cfg.fifo_channels = flags.get_bool("fifo", false);
  const SimTime delay_max = flags.get_int("delay_max", 8);
  const std::string delay = flags.get_string("delay", "uniform");
  if (delay == "fixed") {
    cfg.delay = DelayModel::fixed_delay(delay_max);
  } else if (delay == "heavy") {
    cfg.delay = DelayModel::heavy_tail(1, 50 * delay_max);
  } else {
    cfg.delay = DelayModel::uniform(1, delay_max);
  }

  auto counter = make_counter(kind, min_n);
  const auto n = static_cast<std::int64_t>(counter->num_processors());

  const std::string topo = flags.get_string("topology", "complete");
  if (topo == "ring") {
    cfg.topology = std::make_shared<RingTopology>(n);
  } else if (topo == "torus") {
    cfg.topology = std::make_shared<TorusTopology>(n);
  } else if (topo == "hypercube") {
    if ((n & (n - 1)) != 0) {
      std::fprintf(stderr, "hypercube needs n to be a power of two (n=%lld)\n",
                   static_cast<long long>(n));
      return 2;
    }
    cfg.topology = std::make_shared<HypercubeTopology>(n);
  } else if (topo != "complete") {
    std::fprintf(stderr, "unknown topology: %s\n", topo.c_str());
    return 2;
  }

  Simulator sim(std::move(counter), cfg);
  const std::int64_t ops = flags.get_int("ops", n);
  Rng rng(seed + 1);
  const std::string workload = flags.get_string("workload", "sequential");
  std::vector<ProcessorId> order;
  if (workload == "sequential") {
    order = schedule_sequential(n);
  } else if (workload == "reverse") {
    order = schedule_reverse(n);
  } else if (workload == "permutation") {
    order = schedule_permutation(n, rng);
  } else if (workload == "uniform") {
    order = schedule_uniform(n, ops, rng);
  } else if (workload == "zipf") {
    order = schedule_zipf(n, ops, flags.get_double("zipf", 0.8), rng);
  } else if (workload == "single") {
    order = schedule_single_origin(0, ops);
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 2;
  }

  std::printf("counter  : %s\n", sim.counter().name().c_str());
  std::printf("network  : %s, %s delay (max %lld)%s\n",
              cfg.topology ? cfg.topology->name().c_str() : "complete",
              delay.c_str(), static_cast<long long>(delay_max),
              cfg.fifo_channels ? ", fifo" : "");
  std::printf("workload : %s, %zu ops over n=%lld processors\n\n",
              workload.c_str(), order.size(), static_cast<long long>(n));

  const RunResult result = run_sequential(sim, order);
  const LoadReport report = make_load_report(sim);
  const LatencyReport latency = latency_report(sim);
  const ConcentrationReport conc = concentration(sim.metrics());

  std::printf("values ok        : %s (0..%zu, in order)\n",
              result.values_ok ? "yes" : "NO", order.size() - 1);
  std::printf("bottleneck       : processor %d with %lld messages\n",
              report.bottleneck, static_cast<long long>(report.max_load));
  std::printf("paper bound      : k(n) = %.2f  ->  max/k = %.1f\n",
              report.paper_k, report.load_per_k);
  std::printf("loads            : mean %.2f, p50 %lld, p99 %lld\n",
              report.mean_load, static_cast<long long>(report.p50),
              static_cast<long long>(report.p99));
  std::printf("concentration    : gini %.3f, top-1%% share %.3f\n", conc.gini,
              conc.top1_share);
  std::printf("latency (sim t)  : mean %.1f, p99 %lld\n", latency.mean,
              static_cast<long long>(latency.p99));
  std::printf("traffic          : %lld messages, %lld words\n",
              static_cast<long long>(report.total_messages),
              static_cast<long long>(report.total_words));

  if (const auto* tree = dynamic_cast<const TreeService*>(&sim.counter())) {
    std::printf("tree service     : %lld retirements, %lld pool wraps, "
                "%lld forwarded, %lld orphan stashes\n",
                static_cast<long long>(tree->stats().retirements_total),
                static_cast<long long>(tree->stats().pool_wraps),
                static_cast<long long>(tree->stats().forwarded_messages),
                static_cast<long long>(tree->stats().orphan_stashes));
  }
  if (flags.get_bool("histogram", false)) {
    const Summary loads = sim.metrics().load_summary();
    Histogram h(std::max<std::int64_t>(1, loads.max() / 16 + 1), 16);
    for (const auto l : loads.samples()) h.add(l);
    std::printf("\nload histogram:\n%s", h.to_string().c_str());
  }
  return 0;
}
