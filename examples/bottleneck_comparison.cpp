// Compare the bottleneck of every counter implementation on the same
// workload — the experiment behind the paper's introduction: who is a
// hot spot, and by how much.
//
//   $ ./examples/bottleneck_comparison [--n=256] [--seed=4] [--histogram]
#include <iostream>
#include <memory>

#include "dcnt.hpp"

int main(int argc, char** argv) {
  using namespace dcnt;
  const Flags flags(argc, argv);
  const std::int64_t n = flags.get_int("n", 256);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 4));
  const bool histogram = flags.get_bool("histogram", false);

  Table table({"counter", "n", "max_load", "mean_load", "p99", "total_msgs",
               "max/k(n)"});
  for (const CounterKind kind : all_counter_kinds()) {
    SimConfig cfg;
    cfg.seed = seed;
    cfg.delay = DelayModel::uniform(1, 8);
    Simulator sim(make_counter(kind, n), cfg);
    const auto actual_n = static_cast<std::int64_t>(sim.num_processors());
    run_sequential(sim, schedule_sequential(actual_n));
    const LoadReport report = make_load_report(sim);
    table.row()
        .add(to_string(kind))
        .add(actual_n)
        .add(report.max_load)
        .add(report.mean_load, 2)
        .add(report.p99)
        .add(report.total_messages)
        .add(report.load_per_k, 1);

    if (histogram) {
      std::cout << "\n-- load histogram: " << to_string(kind) << " --\n";
      const Summary loads = sim.metrics().load_summary();
      Histogram h(std::max<std::int64_t>(1, loads.max() / 16 + 1), 16);
      for (const auto l : loads.samples()) h.add(l);
      std::cout << h.to_string();
    }
  }
  table.print(std::cout,
              "bottleneck comparison, one inc per processor (sequential)");
  std::cout << "\npaper's shape: tree = Theta(k); central/static-tree = "
               "Theta(n); the rest in between.\n";
  return 0;
}
