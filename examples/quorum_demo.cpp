// Tour of the quorum subsystem: the intersection property behind the
// paper's Hot Spot Lemma, the load of classic static constructions,
// and a counter running on each of them.
//
//   $ ./examples/quorum_demo [--n=49]
#include <cstdio>
#include <iostream>
#include <memory>

#include "dcnt.hpp"

int main(int argc, char** argv) {
  using namespace dcnt;
  const Flags flags(argc, argv);
  const std::int64_t n = flags.get_int("n", 49);

  std::vector<std::shared_ptr<const QuorumSystem>> systems = {
      std::make_shared<MajorityQuorum>(n),
      std::make_shared<GridQuorum>(n),
      std::make_shared<TreeQuorum>(n),
      std::shared_ptr<const QuorumSystem>(CrumblingWall::triangle(n)),
  };

  std::printf("a quorum system is a set family where every two members "
              "intersect\n(the paper's Hot Spot Lemma in disguise).\n\n");
  for (const auto& system : systems) {
    const auto q0 = system->quorum(0);
    const auto q1 = system->quorum(system->num_quorums() / 2);
    std::printf("%-15s example quorum {", system->name().c_str());
    for (std::size_t i = 0; i < q0.size(); ++i) {
      std::printf("%s%d", i == 0 ? "" : ",", q0[i]);
    }
    std::printf("} (size %zu); another has size %zu\n", q0.size(), q1.size());
  }

  Rng rng(1);
  Table table({"system", "mean |Q|", "rotation load", "pairwise intersect"});
  for (const auto& system : systems) {
    const auto load = rotation_load(*system, 4 * n);
    const auto inter = check_pairwise_intersection(*system, 128, 4000, rng);
    table.row()
        .add(system->name())
        .add(load.mean_quorum_size, 1)
        .add(load.max_load, 3)
        .add(inter.all_intersect ? "yes" : "NO");
  }
  table.print(std::cout, "structural comparison");

  Table counters({"counter", "max_load", "total_msgs"});
  for (const auto& system : systems) {
    SimConfig cfg;
    cfg.seed = 2;
    cfg.delay = DelayModel::uniform(1, 5);
    Simulator sim(std::make_unique<QuorumCounter>(system), cfg);
    run_sequential(sim, schedule_sequential(n));
    counters.row()
        .add("quorum(" + system->name() + ")")
        .add(sim.metrics().max_load())
        .add(sim.metrics().total_messages());
  }
  counters.print(std::cout,
                 "counters built on quorums (sequential model; correct by "
                 "the intersection property)");
  std::printf("\nthe paper's counter is, in its authors' words, a *dynamic* "
              "quorum system —\ncompare bottlenecks with bench_quorum.\n");
  return 0;
}
