// Self-scheduling work distribution — the other classic "counting"
// workload: a pool of tasks indexed 0..m-1 and workers that claim the
// next index with inc() whenever they are free. Distinct counter values
// mean every task runs exactly once; the counter's bottleneck decides
// how far the scheme scales.
//
//   $ ./examples/task_dispenser [--tasks=500] [--n=81] [--skew=0.7]
#include <cstdio>
#include <iostream>
#include <algorithm>
#include <memory>

#include "dcnt.hpp"

using namespace dcnt;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::int64_t tasks = flags.get_int("tasks", 500);
  const std::int64_t n = flags.get_int("n", 81);
  const double skew = flags.get_double("skew", 0.7);

  Table table({"dispenser", "max_load", "mean_load", "gini",
               "busiest worker's tasks", "all tasks once"});
  for (const CounterKind kind :
       {CounterKind::kTree, CounterKind::kCentral, CounterKind::kQuorumGrid}) {
    SimConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
    cfg.delay = DelayModel::uniform(1, 6);
    Simulator sim(make_counter(kind, n), cfg);
    const auto actual_n = static_cast<std::int64_t>(sim.num_processors());

    // Workers claim tasks at zipf-skewed rates (fast workers claim
    // more) until the pool is empty.
    Rng rng(cfg.seed + 7);
    const auto claims = schedule_zipf(actual_n, tasks, skew, rng);
    std::vector<std::int64_t> tasks_of(static_cast<std::size_t>(actual_n), 0);
    std::vector<bool> task_done(static_cast<std::size_t>(tasks), false);
    bool exactly_once = true;
    for (const ProcessorId worker : claims) {
      const OpId op = sim.begin_inc(worker);
      sim.run_until_quiescent();
      const Value task = *sim.result(op);
      if (task < tasks) {
        if (task_done[static_cast<std::size_t>(task)]) exactly_once = false;
        task_done[static_cast<std::size_t>(task)] = true;
        ++tasks_of[static_cast<std::size_t>(worker)];
      }
    }
    for (const bool done : task_done) {
      if (!done) exactly_once = false;
    }

    const LoadReport report = make_load_report(sim);
    const ConcentrationReport conc = concentration(sim.metrics());
    std::int64_t busiest_tasks = 0;
    for (const auto t : tasks_of) busiest_tasks = std::max(busiest_tasks, t);
    table.row()
        .add(to_string(kind))
        .add(report.max_load)
        .add(report.mean_load, 2)
        .add(conc.gini, 3)
        .add(busiest_tasks)
        .add(exactly_once ? "yes" : "NO");
  }
  table.print(std::cout,
              "self-scheduling " + std::to_string(tasks) + " tasks over " +
                  std::to_string(n) + " workers (zipf " +
                  format_double(skew, 2) + " claim rates)");
  std::printf(
      "\nevery dispenser assigns each task exactly once (that is what a\n"
      "counter is); they differ in who pays: central concentrates the\n"
      "message load, the paper's tree spreads it at O(k) per worker plus\n"
      "the unavoidable 2 messages per claim at the claiming worker.\n");
  return 0;
}
